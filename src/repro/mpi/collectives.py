"""Collective algorithms over point-to-point.

Textbook algorithms with the usual topology choices:

- barrier: dissemination (log P rounds, works for any P)
- bcast/reduce: binomial tree
- allreduce: recursive doubling for powers of two, reduce+bcast otherwise
- allgather: ring (P-1 steps, bandwidth-optimal for large payloads)
- alltoall(v): pairwise exchange (XOR partners for powers of two)
- gather/scatter: linear at the root

When payloads are real (numpy/bytes), reductions combine element-wise and
gathers concatenate, so tests can verify numerics.  ``TAG_BASE`` offsets
keep collective traffic from matching stray application tags.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional, Sequence

import numpy as np

from repro.errors import MPIError

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Communicator
    from repro.sim.events import Event

TAG_BARRIER = 1 << 20
TAG_BCAST = 2 << 20
TAG_REDUCE = 3 << 20
TAG_ALLREDUCE = 4 << 20
TAG_ALLGATHER = 5 << 20
TAG_ALLTOALL = 6 << 20
TAG_GATHER = 7 << 20
TAG_SCATTER = 8 << 20


# -- reduction operators ------------------------------------------------------


def SUM(a, b):
    return a + b if a is not None and b is not None else None


def MAX(a, b):
    if a is None or b is None:
        return None
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def MIN(a, b):
    if a is None or b is None:
        return None
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


# -- barrier --------------------------------------------------------------------


def barrier(comm: "Communicator") -> Generator["Event", object, None]:
    """Dissemination barrier: ceil(log2 P) rounds of 0-byte exchanges."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    rounds = math.ceil(math.log2(size))
    for k in range(rounds):
        dist = 1 << k
        dest = (rank + dist) % size
        src = (rank - dist) % size
        yield from comm.sendrecv(dest, src, nbytes=0, tag=TAG_BARRIER + k)


# -- broadcast / reduce -----------------------------------------------------------


def bcast(
    comm: "Communicator", root: int, nbytes: int, data: object = None
) -> Generator["Event", object, object]:
    """Binomial-tree broadcast; returns the payload at every rank."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return data
    rel = (rank - root) % size
    # Receive from the parent unless we are the root.
    if rel != 0:
        mask = 1
        while mask <= rel:
            mask <<= 1
        mask >>= 1
        parent = (rel - mask + root) % size
        req = yield from comm.recv(parent, TAG_BCAST)
        data = req.data
    # Forward to children.
    mask = 1
    while mask <= rel:
        mask <<= 1
    while mask < size:
        if rel + mask < size:
            child = (rel + mask + root) % size
            yield from comm.send(child, nbytes, TAG_BCAST, data)
        mask <<= 1
    return data


def reduce(
    comm: "Communicator", root: int, nbytes: int, data: object = None, op=SUM
) -> Generator["Event", object, object]:
    """Binomial-tree reduction; result lands at ``root`` (None elsewhere)."""
    size, rank = comm.size, comm.rank
    acc = data
    if size == 1:
        return acc
    rel = (rank - root) % size
    mask = 1
    while mask < size:
        if rel & mask:
            parent = ((rel & ~mask) + root) % size
            yield from comm.send(parent, nbytes, TAG_REDUCE, acc)
            return None
        partner = rel | mask
        if partner < size:
            req = yield from comm.recv(((partner + root) % size), TAG_REDUCE)
            acc = op(acc, req.data)
        mask <<= 1
    return acc


def allreduce(
    comm: "Communicator", nbytes: int, data: object = None, op=SUM
) -> Generator["Event", object, object]:
    """Recursive doubling (power-of-two P) or reduce+bcast fallback."""
    size, rank = comm.size, comm.rank
    acc = data
    if size == 1:
        return acc
    if _is_pow2(size):
        mask = 1
        while mask < size:
            partner = rank ^ mask
            req = yield from comm.sendrecv(partner, partner, nbytes,
                                           TAG_ALLREDUCE + mask, acc)
            acc = op(acc, req.data)
            mask <<= 1
        return acc
    acc = yield from reduce(comm, 0, nbytes, acc, op)
    acc = yield from bcast(comm, 0, nbytes, acc)
    return acc


# -- gather family -----------------------------------------------------------------


def allgather(
    comm: "Communicator", nbytes: int, data: object = None
) -> Generator["Event", object, list]:
    """Ring allgather; returns the list of every rank's contribution."""
    size, rank = comm.size, comm.rank
    blocks: list = [None] * size
    blocks[rank] = data
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    # In step s we forward the block that originated at (rank - s) % size.
    carry = data
    for s in range(size - 1):
        req = yield from comm.sendrecv(right, left, nbytes, TAG_ALLGATHER + s, carry)
        origin = (rank - s - 1) % size
        blocks[origin] = req.data
        carry = req.data
    return blocks


def alltoall(
    comm: "Communicator", nbytes_per_peer: int, data_per_peer: Optional[list] = None
) -> Generator["Event", object, list]:
    """Pairwise-exchange alltoall; returns received blocks indexed by source."""
    size, rank = comm.size, comm.rank
    if data_per_peer is not None and len(data_per_peer) != size:
        raise MPIError("data_per_peer must have one entry per rank")
    out: list = [None] * size
    out[rank] = data_per_peer[rank] if data_per_peer else None
    for step in range(1, size):
        if _is_pow2(size):
            partner = rank ^ step
        else:
            partner = (rank + step) % size
        sdata = data_per_peer[partner] if data_per_peer else None
        req = yield from comm.sendrecv(
            partner,
            partner if _is_pow2(size) else (rank - step) % size,
            nbytes_per_peer,
            TAG_ALLTOALL + step,
            sdata,
        )
        out[req.source] = req.data
    return out


def alltoallv(
    comm: "Communicator", send_counts: Sequence[int], data_per_peer: Optional[list] = None
) -> Generator["Event", object, list]:
    """Pairwise alltoall with per-destination sizes (the IS workhorse)."""
    size, rank = comm.size, comm.rank
    if len(send_counts) != size:
        raise MPIError(f"send_counts must have {size} entries")
    out: list = [None] * size
    out[rank] = data_per_peer[rank] if data_per_peer else None
    for step in range(1, size):
        if _is_pow2(size):
            partner = rank ^ step
            src = partner
        else:
            partner = (rank + step) % size
            src = (rank - step) % size
        sdata = data_per_peer[partner] if data_per_peer else None
        rreq = yield from comm.irecv(src, TAG_ALLTOALL + step)
        sreq = yield from comm.isend(partner, int(send_counts[partner]),
                                     TAG_ALLTOALL + step, sdata)
        yield from comm.waitall([sreq, rreq])
        out[rreq.source] = rreq.data
    return out


def reduce_scatter(
    comm: "Communicator", nbytes_per_block: int,
    data_per_block: Optional[list] = None, op=SUM,
) -> Generator["Event", object, object]:
    """Reduce P blocks element-wise, scatter block i to rank i.

    Implemented as recursive halving for powers of two (the
    bandwidth-optimal classic), otherwise reduce+scatter fallback.
    Returns this rank's reduced block.
    """
    size, rank = comm.size, comm.rank
    if data_per_block is not None and len(data_per_block) != size:
        raise MPIError("data_per_block must have one entry per rank")
    if size == 1:
        return data_per_block[0] if data_per_block else None
    blocks = list(data_per_block) if data_per_block else [None] * size

    if _is_pow2(size):
        # Recursive halving: each step exchanges half the remaining blocks.
        lo, hi = 0, size
        step = 0
        while hi - lo > 1:
            mid = (lo + hi) // 2
            in_low = rank < mid
            partner = rank + (mid - lo) if in_low else rank - (mid - lo)
            # Send the half of blocks the partner's side owns; combine ours.
            send_range = range(mid, hi) if in_low else range(lo, mid)
            keep_range = range(lo, mid) if in_low else range(mid, hi)
            payload = [blocks[i] for i in send_range]
            req = yield from comm.sendrecv(
                partner, partner,
                nbytes_per_block * len(payload),
                TAG_ALLREDUCE + (step << 8), payload,
            )
            incoming = req.data
            for offset, i in enumerate(keep_range):
                other = incoming[offset] if incoming else None
                blocks[i] = op(blocks[i], other)
            lo, hi = (lo, mid) if in_low else (mid, hi)
            step += 1
        return blocks[rank]

    reduced = yield from reduce(comm, 0, nbytes_per_block * size, blocks,
                                op=lambda a, b: [op(x, y) for x, y in zip(a, b)]
                                if a is not None and b is not None else None)
    mine = yield from scatter(comm, 0, nbytes_per_block,
                              reduced if rank == 0 else None)
    return mine


def scan(
    comm: "Communicator", nbytes: int, data: object = None, op=SUM,
    exclusive: bool = False,
) -> Generator["Event", object, object]:
    """Inclusive (MPI_Scan) or exclusive (MPI_Exscan) prefix reduction.

    Linear pipeline: rank r receives the prefix over 0..r-1 from r-1,
    combines, forwards.  Returns the prefix at this rank (None at rank 0
    when exclusive).
    """
    size, rank = comm.size, comm.rank
    prefix = None
    if rank > 0:
        req = yield from comm.recv(rank - 1, TAG_REDUCE + (1 << 10))
        prefix = req.data
    total = data if prefix is None else op(prefix, data)
    if rank < size - 1:
        yield from comm.send(rank + 1, nbytes, TAG_REDUCE + (1 << 10), total)
    return prefix if exclusive else total


def gather(
    comm: "Communicator", root: int, nbytes: int, data: object = None
) -> Generator["Event", object, Optional[list]]:
    """Linear gather at the root; returns the list at root, None elsewhere."""
    size, rank = comm.size, comm.rank
    if rank != root:
        yield from comm.send(root, nbytes, TAG_GATHER, data)
        return None
    blocks: list = [None] * size
    blocks[root] = data
    reqs = []
    for _ in range(size - 1):
        req = yield from comm.irecv(tag=TAG_GATHER)
        reqs.append(req)
    yield from comm.waitall(reqs)
    for req in reqs:
        blocks[req.source] = req.data
    return blocks


def scatter(
    comm: "Communicator", root: int, nbytes_per_peer: int,
    data_per_peer: Optional[list] = None,
) -> Generator["Event", object, object]:
    """Linear scatter from the root; returns this rank's block."""
    size, rank = comm.size, comm.rank
    if rank == root:
        for peer in range(size):
            if peer == root:
                continue
            sdata = data_per_peer[peer] if data_per_peer else None
            yield from comm.send(peer, nbytes_per_peer, TAG_SCATTER, sdata)
        return data_per_peer[root] if data_per_peer else None
    req = yield from comm.recv(root, TAG_SCATTER)
    return req.data
