"""A working MPI subset over the simulated verbs / IPoIB transports.

This is the substrate for the paper's fig. 6 (NPB over RDMA vs CoRD vs
IPoIB): a real message-passing library with

- eager + rendezvous point-to-point protocols (rendezvous = RTS/CTS +
  RDMA-write-with-immediate, the classic zero-copy scheme),
- tag matching with wildcard source/tag and an unexpected-message queue,
- nonblocking requests (``isend``/``irecv``/``wait``/``waitall``),
- tree/ring/pairwise collectives (barrier, bcast, reduce, allreduce,
  allgather, alltoall/v, scatter, gather),
- a rank runtime that pins each rank to a simulated core and runs ranks
  across the cluster's hosts; shared-memory bypass is deliberately absent
  (the paper disables it to amplify network effects).

Payloads are optional: NPB skeletons move sizes; correctness tests move
real numpy arrays and verify the collectives' results.
"""

from repro.mpi.requests import Request
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator
from repro.mpi.world import MpiWorld, run_mpi

__all__ = [
    "Request",
    "Communicator",
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiWorld",
    "run_mpi",
]
