"""perftest 4.5 clone: the microbenchmarks of the paper's §2 and §5.

- :mod:`~repro.perftest.techniques` — the §2 "technique removal" toggles:
  no zero-copy (extra memcpy), no kernel bypass (extra null syscall),
  no polling (interrupt-driven completions).
- :mod:`~repro.perftest.lat` — ``ib_send_lat`` / ``ib_read_lat`` /
  ``ib_write_lat`` analogues (ping-pong latency).
- :mod:`~repro.perftest.bw` — ``ib_send_bw`` / ``ib_read_bw`` /
  ``ib_write_bw`` analogues (windowed bandwidth).
- :mod:`~repro.perftest.runner` — configuration -> testbed -> sweep glue
  used by the figure benchmarks.
"""

from repro.perftest.techniques import Techniques
from repro.perftest.lat import LatencyResult, read_lat, send_lat, write_lat
from repro.perftest.bw import BwResult, read_bw, send_bw, write_bw
from repro.perftest.runner import PerftestConfig, run_lat, run_bw, sweep_bw, sweep_lat

__all__ = [
    "Techniques",
    "LatencyResult",
    "send_lat",
    "read_lat",
    "write_lat",
    "BwResult",
    "send_bw",
    "read_bw",
    "write_bw",
    "PerftestConfig",
    "run_lat",
    "run_bw",
    "sweep_lat",
    "sweep_bw",
]
