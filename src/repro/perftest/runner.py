"""Configuration glue: build a testbed, run one perftest, sweep sizes.

Every measurement gets a *fresh* simulator seeded from the config, so runs
are independent and reproducible — exactly like re-running the real
perftest binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Generator, Optional

from repro.cluster import build_pair
from repro.core.endpoint import Endpoint, make_rc_pair, make_ud_pair
from repro.core.policy import PolicyChain
from repro.errors import ConfigError
from repro.hw.profiles import SystemProfile, get_profile
from repro.perftest.bw import BwResult, read_bw, send_bw, write_bw
from repro.perftest.lat import LatencyResult, read_lat, send_lat, write_lat
from repro.perftest.techniques import Techniques
from repro.sim import Simulator

OPS = ("send", "read", "write")
TRANSPORTS = ("RC", "UD")


@dataclass(frozen=True)
class PerftestConfig:
    """One perftest invocation's parameters."""

    system: str = "L"
    transport: str = "RC"
    op: str = "send"
    client: str = "bypass"  # dataplane kind on the initiating side
    server: str = "bypass"
    techniques: Techniques = field(default_factory=Techniques)
    iters: int = 200
    warmup: int = 20
    window: int = 128
    seed: int = 7
    buf_bytes: int = 16 * 1024 * 1024

    def __post_init__(self):
        if self.op not in OPS:
            raise ConfigError(f"op must be one of {OPS}, got {self.op!r}")
        if self.transport not in TRANSPORTS:
            raise ConfigError(f"transport must be in {TRANSPORTS}")
        if self.transport == "UD" and self.op != "send":
            raise ConfigError("UD supports only send/recv (no one-sided ops)")

    @property
    def profile(self) -> SystemProfile:
        return get_profile(self.system)

    @property
    def label(self) -> str:
        return f"{self.transport}-{self.op} {self.client[:2].upper()}->{self.server[:2].upper()}"

    def with_(self, **kwargs) -> "PerftestConfig":
        return replace(self, **kwargs)


def _build(
    config: PerftestConfig,
    policies_client: Optional[PolicyChain] = None,
    policies_server: Optional[PolicyChain] = None,
) -> tuple[Simulator, Endpoint, Endpoint]:
    sim = Simulator(seed=config.seed)
    _fabric, host_a, host_b = build_pair(sim, config.profile)
    holder: dict[str, tuple[Endpoint, Endpoint]] = {}

    def setup() -> Generator:
        if config.transport == "RC":
            pair = yield from make_rc_pair(
                host_a, host_b, config.client, config.server,
                policies_a=policies_client, policies_b=policies_server,
                buf_bytes=config.buf_bytes,
            )
        else:
            pair = yield from make_ud_pair(
                host_a, host_b, config.client, config.server,
                policies_a=policies_client, policies_b=policies_server,
                buf_bytes=config.buf_bytes,
            )
        holder["pair"] = pair

    sim.run(sim.process(setup()))
    client, server = holder["pair"]
    return sim, client, server


_LAT_FUNCS: dict[str, Callable] = {"send": send_lat, "read": read_lat, "write": write_lat}
_BW_FUNCS: dict[str, Callable] = {"send": send_bw, "read": read_bw, "write": write_bw}


def run_lat(config: PerftestConfig, size: int) -> LatencyResult:
    """One latency measurement at one message size."""
    sim, client, server = _build(config)
    func = _LAT_FUNCS[config.op]

    def main() -> Generator:
        result = yield from func(
            sim, client, server, size,
            iters=config.iters, warmup=config.warmup,
            techniques=config.techniques,
        )
        return result

    return sim.run(sim.process(main()))


def run_bw(config: PerftestConfig, size: int) -> BwResult:
    """One bandwidth measurement at one message size."""
    sim, client, server = _build(config)
    func = _BW_FUNCS[config.op]

    def main() -> Generator:
        result = yield from func(
            sim, client, server, size,
            iters=config.iters, window=config.window, warmup=config.warmup,
            techniques=config.techniques,
        )
        return result

    return sim.run(sim.process(main()))


def sweep_lat(config: PerftestConfig, sizes: list[int]) -> list[LatencyResult]:
    return [run_lat(config, size) for size in sizes]


def sweep_bw(config: PerftestConfig, sizes: list[int]) -> list[BwResult]:
    return [run_bw(config, size) for size in sizes]


def default_sizes(
    max_bytes: int = 8 * 1024 * 1024, min_bytes: int = 2
) -> list[int]:
    """perftest's power-of-two size ladder."""
    sizes = []
    size = min_bytes
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    return sizes
