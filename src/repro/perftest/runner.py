"""Configuration glue: build a testbed, run one perftest, sweep sizes.

Every measurement gets a *fresh* simulator seeded from the config, so runs
are independent and reproducible — exactly like re-running the real
perftest binary.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Callable, Generator, Optional

from repro.cluster import build_pair
from repro.core.endpoint import Endpoint, make_rc_pair, make_ud_pair
from repro.core.policy import PolicyChain
from repro.errors import ConfigError
from repro.faults import FaultPlan
from repro.hw.profiles import SystemProfile, get_profile
from repro.perftest.bw import BwResult, read_bw, send_bw, write_bw
from repro.perftest.lat import LatencyResult, read_lat, send_lat, write_lat
from repro.perftest.techniques import Techniques
from repro.sim import FastForward, Simulator

OPS = ("send", "read", "write")
TRANSPORTS = ("RC", "UD")

#: Opt-in benchmark telemetry: set REPRO_TELEMETRY=1 to run every
#: measurement with tracing + metrics on and export Chrome-trace/metrics
#: JSON into REPRO_TELEMETRY_DIR (default results/telemetry).  Telemetry
#: never changes measured results (see tests/test_golden_determinism.py).
TELEMETRY_ENV = "REPRO_TELEMETRY"
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
#: Trace ring-buffer cap while telemetry is on (bounds benchmark memory).
TELEMETRY_MAX_RECORDS = 200_000

#: Opt-in steady-state fast-forward: set REPRO_FASTFORWARD=1 (or pass
#: ``--fast-forward`` / ``PerftestConfig.fastforward=True``) to let every
#: measurement skip provably periodic loop cycles.  Results stay
#: bit-identical (see tests/test_fastforward.py); the probe auto-disarms
#: whenever exactness cannot be proven (faults, trace export, RNG draws
#: inside the loop — e.g. system A's syscall jitter).
FASTFORWARD_ENV = "REPRO_FASTFORWARD"


def _telemetry_on() -> bool:
    return os.environ.get(TELEMETRY_ENV, "").lower() in ("1", "true", "yes", "on")


def _fastforward_on() -> bool:
    return os.environ.get(FASTFORWARD_ENV, "").lower() in ("1", "true", "yes", "on")


#: Per-process accounting across measurements (benchmark instrumentation;
#: ``bench_support.parallel_sweep`` merges workers' deltas back into the
#: parent so `figure_bench` sees sweep-wide totals).
RUN_STATS: dict[str, float] = {}


def _zero_stats() -> dict[str, float]:
    return {
        "measurements": 0,
        "events_scheduled": 0,
        "ff_jumps": 0,
        "ff_cycles_skipped": 0,
        "ff_units_skipped": 0,
        "ff_events_skipped": 0,
        "ff_time_skipped_ns": 0.0,
    }


RUN_STATS.update(_zero_stats())


def reset_run_stats() -> None:
    RUN_STATS.update(_zero_stats())


def run_stats_snapshot() -> dict[str, float]:
    return dict(RUN_STATS)


def merge_run_stats(delta: dict) -> None:
    for key, value in delta.items():
        RUN_STATS[key] = RUN_STATS.get(key, 0) + value


def _make_probe(sim: Simulator, config: "PerftestConfig",
                label: str) -> Optional[FastForward]:
    enabled = config.fastforward if config.fastforward is not None \
        else _fastforward_on()
    if not enabled:
        return None
    return FastForward(sim, faults=config.faults, label=label)


def _note_run(sim: Simulator, probe: Optional[FastForward]) -> None:
    RUN_STATS["measurements"] += 1
    RUN_STATS["events_scheduled"] += sim.events_scheduled
    if probe is not None:
        stats = probe.stats
        RUN_STATS["ff_jumps"] += stats.jumps
        RUN_STATS["ff_cycles_skipped"] += stats.cycles_skipped
        RUN_STATS["ff_units_skipped"] += stats.units_skipped
        RUN_STATS["ff_events_skipped"] += stats.events_skipped
        RUN_STATS["ff_time_skipped_ns"] += stats.time_skipped_ns


def _export_telemetry(sim: Simulator, config: "PerftestConfig", size: int,
                      kind: str, hosts) -> None:
    """Dump this measurement's trace + metrics (REPRO_TELEMETRY=1 only)."""
    from repro.telemetry import chrome_trace, metrics_snapshot

    outdir = os.environ.get(TELEMETRY_DIR_ENV, os.path.join("results", "telemetry"))
    os.makedirs(outdir, exist_ok=True)
    stem = (f"{kind}_{config.system}_{config.transport}_{config.op}_"
            f"{config.client}-{config.server}_{size}")
    with open(os.path.join(outdir, stem + ".trace.json"), "w") as fh:
        json.dump(chrome_trace(sim.trace), fh)
    with open(os.path.join(outdir, stem + ".metrics.json"), "w") as fh:
        json.dump(metrics_snapshot(sim, hosts=hosts), fh,
                  indent=2, sort_keys=True, default=str)


@dataclass(frozen=True)
class PerftestConfig:
    """One perftest invocation's parameters."""

    system: str = "L"
    transport: str = "RC"
    op: str = "send"
    client: str = "bypass"  # dataplane kind on the initiating side
    server: str = "bypass"
    techniques: Techniques = field(default_factory=Techniques)
    iters: int = 200
    warmup: int = 20
    window: int = 128
    seed: int = 7
    buf_bytes: int = 16 * 1024 * 1024
    #: Optional fault-injection plan (see :mod:`repro.faults`): attached
    #: to the fabric of every measurement built from this config.
    faults: Optional[FaultPlan] = None
    #: Steady-state fast-forward: True/False force it on/off for this
    #: config; None defers to REPRO_FASTFORWARD.  Bit-identical either
    #: way — the probe disarms itself whenever it cannot be exact.
    fastforward: Optional[bool] = None

    def __post_init__(self):
        if self.op not in OPS:
            raise ConfigError(f"op must be one of {OPS}, got {self.op!r}")
        if self.transport not in TRANSPORTS:
            raise ConfigError(f"transport must be in {TRANSPORTS}")
        if self.transport == "UD" and self.op != "send":
            raise ConfigError("UD supports only send/recv (no one-sided ops)")

    @property
    def profile(self) -> SystemProfile:
        return get_profile(self.system)

    @property
    def label(self) -> str:
        return f"{self.transport}-{self.op} {self.client[:2].upper()}->{self.server[:2].upper()}"

    def with_(self, **kwargs) -> "PerftestConfig":
        return replace(self, **kwargs)


def _build(
    config: PerftestConfig,
    policies_client: Optional[PolicyChain] = None,
    policies_server: Optional[PolicyChain] = None,
    trace=None,
) -> tuple[Simulator, Endpoint, Endpoint]:
    if trace is not None:
        sim = Simulator(seed=config.seed, trace=trace)
        sim.telemetry.enabled = True
    elif _telemetry_on():
        from repro.sim.trace import Trace

        sim = Simulator(seed=config.seed,
                        trace=Trace(enabled=True,
                                    max_records=TELEMETRY_MAX_RECORDS))
        sim.telemetry.enabled = True
    else:
        sim = Simulator(seed=config.seed)
    fabric, host_a, host_b = build_pair(sim, config.profile)
    if config.faults is not None:
        fabric.inject_faults(config.faults)
    holder: dict[str, tuple[Endpoint, Endpoint]] = {}

    def setup() -> Generator:
        if config.transport == "RC":
            pair = yield from make_rc_pair(
                host_a, host_b, config.client, config.server,
                policies_a=policies_client, policies_b=policies_server,
                buf_bytes=config.buf_bytes,
            )
        else:
            pair = yield from make_ud_pair(
                host_a, host_b, config.client, config.server,
                policies_a=policies_client, policies_b=policies_server,
                buf_bytes=config.buf_bytes,
            )
        holder["pair"] = pair

    sim.run(sim.process(setup()))
    client, server = holder["pair"]
    return sim, client, server


_LAT_FUNCS: dict[str, Callable] = {"send": send_lat, "read": read_lat, "write": write_lat}
_BW_FUNCS: dict[str, Callable] = {"send": send_bw, "read": read_bw, "write": write_bw}


def run_lat(config: PerftestConfig, size: int) -> LatencyResult:
    """One latency measurement at one message size."""
    sim, client, server = _build(config)
    func = _LAT_FUNCS[config.op]
    probe = _make_probe(sim, config, f"lat:{config.op}:{size}")

    def main() -> Generator:
        result = yield from func(
            sim, client, server, size,
            iters=config.iters, warmup=config.warmup,
            techniques=config.techniques, fastforward=probe,
        )
        return result

    result = sim.run(sim.process(main()))
    _note_run(sim, probe)
    if _telemetry_on():
        _export_telemetry(sim, config, size, "lat", [client.host, server.host])
    return result


def run_bw(config: PerftestConfig, size: int) -> BwResult:
    """One bandwidth measurement at one message size."""
    sim, client, server = _build(config)
    func = _BW_FUNCS[config.op]
    probe = _make_probe(sim, config, f"bw:{config.op}:{size}")

    def main() -> Generator:
        result = yield from func(
            sim, client, server, size,
            iters=config.iters, window=config.window, warmup=config.warmup,
            techniques=config.techniques, fastforward=probe,
        )
        return result

    result = sim.run(sim.process(main()))
    _note_run(sim, probe)
    nic_c, nic_s = client.host.nic.counters, server.host.nic.counters
    result.retransmits = nic_c.retransmits + nic_s.retransmits
    result.ack_timeouts = nic_c.ack_timeouts + nic_s.ack_timeouts
    if _telemetry_on():
        _export_telemetry(sim, config, size, "bw", [client.host, server.host])
    return result


def run_attributed(
    config: PerftestConfig, size: int, kind: str = "lat"
) -> tuple[object, Simulator, tuple[Endpoint, Endpoint]]:
    """One measurement run with a full (unbounded) trace kept for
    attribution.

    Unlike :func:`run_lat`/:func:`run_bw` this always traces — regardless
    of ``REPRO_TELEMETRY`` — with no ring cap, so
    :func:`repro.telemetry.attribution.attribute_spans` sees every span
    mark (a truncated ring would silently skew the blame tables; the
    callers check ``sim.trace.dropped == 0``).  Connection-setup records
    are cleared before the measurement starts so spans cover measured ops
    only.  Returns ``(result, sim, (client, server))``.
    """
    if kind not in ("lat", "bw"):
        raise ConfigError(f"kind must be 'lat' or 'bw', got {kind!r}")
    from repro.sim.trace import Trace

    sim, client, server = _build(config, trace=Trace(enabled=True))
    sim.trace.clear()  # drop connection-setup records; keep measured ops
    probe = _make_probe(sim, config, f"attr:{kind}:{config.op}:{size}")
    func = (_LAT_FUNCS if kind == "lat" else _BW_FUNCS)[config.op]
    kwargs = dict(iters=config.iters, warmup=config.warmup,
                  techniques=config.techniques, fastforward=probe)
    if kind == "bw":
        kwargs["window"] = config.window

    def main() -> Generator:
        result = yield from func(sim, client, server, size, **kwargs)
        return result

    result = sim.run(sim.process(main()))
    _note_run(sim, probe)
    return result, sim, (client, server)


def sweep_lat(config: PerftestConfig, sizes: list[int]) -> list[LatencyResult]:
    return [run_lat(config, size) for size in sizes]


def sweep_bw(config: PerftestConfig, sizes: list[int]) -> list[BwResult]:
    return [run_bw(config, size) for size in sizes]


def default_sizes(
    max_bytes: int = 8 * 1024 * 1024, min_bytes: int = 2
) -> list[int]:
    """perftest's power-of-two size ladder."""
    sizes = []
    size = min_bytes
    while size <= max_bytes:
        sizes.append(size)
        size *= 2
    return sizes
