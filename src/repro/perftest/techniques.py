"""The §2 experiment: "removing" performance techniques one at a time.

The paper modifies perftest to emulate the absence of each technique:

- **zero-copy removed** — an extra memcpy on send and on receive (what the
  kernel socket path would do), costing ~140 us/MiB on system L.
- **kernel-bypass removed** — a ``getppid``-style null system call around
  each data-plane operation (the pure user/kernel transition cost).
- **polling removed** — completions consumed through the completion
  channel (arm CQ, block, take the interrupt) instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.core.dataplane import WaitMode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import Endpoint
    from repro.sim.events import Event


@dataclass(frozen=True)
class Techniques:
    """Which of the three techniques are active (all on = plain RDMA)."""

    zero_copy: bool = True
    kernel_bypass: bool = True
    polling: bool = True

    @property
    def wait_mode(self) -> WaitMode:
        return WaitMode.POLL if self.polling else WaitMode.EVENT

    @property
    def label(self) -> str:
        if self.zero_copy and self.kernel_bypass and self.polling:
            return "baseline"
        off = []
        if not self.zero_copy:
            off.append("zero-copy")
        if not self.kernel_bypass:
            off.append("kernel-bypass")
        if not self.polling:
            off.append("polling")
        return "no " + "+".join(off)

    def charge_send_side(self, ep: "Endpoint", nbytes: int):
        """Extra sender CPU per message for removed techniques.

        Returns an iterable for ``yield from``; the all-techniques-on case
        (every baseline benchmark message) short-circuits to a shared empty
        iterator instead of spinning up a no-op generator.
        """
        if self.zero_copy and self.kernel_bypass:
            return _NO_CHARGE
        return self._charge_send(ep, nbytes)

    def _charge_send(
        self, ep: "Endpoint", nbytes: int
    ) -> Generator["Event", object, None]:
        if not self.zero_copy:
            yield from ep.core.run(ep.host.mem_model.copy_ns(nbytes))
        if not self.kernel_bypass:
            yield from ep.core.syscall(0.0)  # the paper's getppid

    def charge_recv_side(self, ep: "Endpoint", nbytes: int):
        """Extra receiver CPU per message for removed techniques.

        The paper's modified perftest makes *one* extra copy per message
        (its 140 us/MiB anchor), charged on the send side; the receive side
        only pays the emulated syscall."""
        if self.kernel_bypass:
            return _NO_CHARGE
        return self._charge_recv(ep, nbytes)

    def _charge_recv(
        self, ep: "Endpoint", nbytes: int
    ) -> Generator["Event", object, None]:
        yield from ep.core.syscall(0.0)


#: Shared pre-exhausted iterator: ``yield from _NO_CHARGE`` is a no-op and,
#: unlike a generator, allocates nothing.  Safe to share — an exhausted
#: tuple-iterator holds no state.
_NO_CHARGE = iter(())


#: The four §2 configurations, in the paper's order.
FIG1_VARIANTS = (
    Techniques(),
    Techniques(zero_copy=False),
    Techniques(kernel_bypass=False),
    Techniques(polling=False),
)
