"""Bandwidth microbenchmarks (``ib_send_bw`` / ``ib_read_bw`` / ``ib_write_bw``).

Windowed streaming: the sender keeps up to ``window`` operations in flight
and reaps completions in batches.  For two-sided sends, bandwidth is
measured at the *receiver* (the honest end); one-sided ops measure at the
initiator.  Message rate falls out of the same timestamps — fig. 4 overlays
it on the relative-throughput curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import ConfigError
from repro.perftest.techniques import Techniques
from repro.units import to_gbit_per_s
from repro.verbs.wr import Opcode, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import Endpoint
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.sim.fastforward import FastForward


@dataclass
class BwResult:
    """Per-size bandwidth measurement."""

    size: int
    iters: int
    window: int
    duration_ns: float
    #: RC loss-recovery activity over the whole run (both NICs); nonzero
    #: only when the measurement ran with a fault plan attached.
    retransmits: int = 0
    ack_timeouts: int = 0

    @property
    def bytes_moved(self) -> int:
        return self.size * self.iters

    @property
    def gbit_per_s(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return to_gbit_per_s(self.bytes_moved / self.duration_ns)

    @property
    def msg_rate_per_s(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return self.iters / self.duration_ns * 1e9


def _signal_every(window: int, techniques: Techniques) -> int:
    """Signal one in N sends (perftest signals sparsely to cut CQ traffic).

    Event mode (polling removed) needs a completion event per work request
    to make progress, so everything is signaled — part of why "no polling"
    hurts small-message throughput so much (§2).
    """
    if not techniques.polling:
        return 1
    return max(1, window // 2)


def send_bw(
    sim: "Simulator",
    sender: "Endpoint",
    receiver: "Endpoint",
    size: int,
    iters: int = 400,
    window: int = 128,
    warmup: int = 64,
    techniques: Techniques = Techniques(),
    fastforward: "FastForward" = None,
) -> Generator["Event", object, BwResult]:
    """Two-sided streaming send; bandwidth measured at the receiver."""
    if size < 0 or size > sender.buf.length:
        raise ConfigError(f"bad message size {size}")
    is_ud = sender.qp.transport.value == "UD"
    window = min(window, sender.qp.sq_depth)
    rq_target = min(receiver.qp.rq_depth, window * 2 + 16)
    total = warmup + iters
    done = sim.event(name="send_bw.done")

    tx_done = sim.event(name="send_bw.tx_done")

    probe = fastforward
    if probe is not None:
        # The end-game (rx reposts stop, tx drains, UD grace) begins once
        # `received` gets within rq_target+window of the end — keep every
        # jump comfortably short of it so the wind-down is simulated.
        # The last milestone is a hard stop: no skipping once `received`
        # passes it (probe disarms), so the whole drain runs at full
        # fidelity.  The tx burst schedule recurs every `sig` receive
        # boundaries, so the period search must reach past it.
        tail = rq_target + window + 16
        probe.begin("received", (warmup, max(warmup + 1, total - tail)),
                    max_period=2 * _signal_every(window, techniques) + 4)

    def rx() -> Generator["Event", object, None]:
        posted = 0
        while posted < min(rq_target, total):
            yield from receiver.post_recv(
                RecvWR(wr_id=posted, addr=receiver.buf.addr,
                       length=receiver.buf.length, lkey=receiver.mr.lkey)
            )
            posted += 1
        received = 0
        measured = 0
        t_start = None
        while received < total:
            if is_ud and tx_done.processed and len(receiver.recv_cq) == 0:
                # UD is lossy: the sender may have outrun us and some
                # messages were dropped.  Grace-wait for stragglers, then
                # account what actually arrived.
                grace = window * fabric_time + 50_000.0
                yield grace
                if len(receiver.recv_cq) == 0:
                    break
            cqes = yield from receiver.dataplane.wait_cq(
                receiver.recv_cq, max_entries=16, mode=techniques.wait_mode
            )
            reposts = []
            for cqe in cqes:
                assert cqe.ok
                received += 1
                yield from techniques.charge_recv_side(receiver, size)
                if received == warmup:
                    t_start = sim.now
                elif received > warmup:
                    measured += 1
                if posted < total:
                    reposts.append(
                        RecvWR(wr_id=posted, addr=receiver.buf.addr,
                               length=receiver.buf.length, lkey=receiver.mr.lkey)
                    )
                    posted += 1
            # Replenish the RQ with one chained call (as perftest does).
            yield from receiver.dataplane.post_recv_many(receiver.qp, reposts)
            if probe is not None and probe.enabled:
                skip = probe.observe(
                    {"received": received, "measured": measured,
                     "posted": posted},
                    (t_start is None, tx_done.processed),
                )
                if skip is not None:
                    received += skip.counters["received"]
                    measured += skip.counters["measured"]
                    posted += skip.counters["posted"]
        if t_start is None:  # degenerate: everything landed in the warmup
            t_start = sim.now
        done.succeed(
            BwResult(size=size, iters=max(measured, 1), window=window,
                     duration_ns=sim.now - t_start)
        )

    fabric_time = sender.host.fabric.serialization_ns(size) if is_ud else 0.0

    def tx() -> Generator["Event", object, None]:
        sig = _signal_every(window, techniques)
        posted = 0
        inflight = 0
        unsignaled = 0
        loop_ns = sender.host.system.cpu.loop_overhead_ns
        while posted < total:
            if probe is not None:
                # Fold in iterations the receiver's probe skipped (the
                # per-period delta is provably ≡ 0 mod `sig`, so the
                # signaling phase below is undisturbed).
                posted += probe.take_aux("tx").get("posted", 0)
            while posted < total and inflight < window:
                yield from sender.core.run(loop_ns)
                yield from techniques.charge_send_side(sender, size)
                signaled = (posted % sig == sig - 1) or posted == total - 1
                wr = SendWR(wr_id=posted, opcode=Opcode.SEND, addr=sender.buf.addr,
                            length=size, lkey=sender.mr.lkey, signaled=signaled)
                if is_ud:
                    wr.ah = receiver.addr
                yield from sender.post_send(wr)
                posted += 1
                inflight += 1
                if not signaled:
                    unsignaled += 1
                if probe is not None and probe.enabled:
                    # Report every post, not just reap points: when the
                    # send side is the bottleneck (e.g. zero-copy removed)
                    # the window never fills, the reap below never runs,
                    # and the receiver's probe would otherwise see no tx
                    # state at all — free to prove a bogus period inside
                    # the signaling super-period.  Per-post state makes
                    # the ramp (inflight still growing) visibly aperiodic
                    # and gives each signaling phase a distinct signature.
                    probe.observe_aux("tx", {"posted": posted},
                                      (inflight, unsignaled, posted % sig))
            cqes = yield from sender.dataplane.wait_cq(
                sender.send_cq, max_entries=16, mode=techniques.wait_mode
            )
            for cqe in cqes:
                assert cqe.ok
                # A signaled completion retires itself and the unsignaled
                # sends posted before it.
                retired = min(unsignaled, sig - 1) + 1
                unsignaled -= retired - 1
                inflight -= retired
            if probe is not None and probe.enabled:
                probe.observe_aux("tx", {"posted": posted},
                                  (inflight, unsignaled, posted % sig))
        tx_done.succeed(None)

    sim.process(rx(), name="send_bw.rx")
    sim.process(tx(), name="send_bw.tx")
    value = yield done
    return value  # type: ignore[return-value]


def _one_sided_bw(
    sim: "Simulator",
    initiator: "Endpoint",
    target: "Endpoint",
    opcode: Opcode,
    size: int,
    iters: int,
    window: int,
    warmup: int,
    techniques: Techniques,
    fastforward: "FastForward" = None,
) -> Generator["Event", object, BwResult]:
    if size < 0 or size > initiator.buf.length:
        raise ConfigError(f"bad message size {size}")
    window = min(window, initiator.qp.sq_depth)
    total = warmup + iters
    sig = _signal_every(window, techniques)
    probe = fastforward
    if probe is not None:
        # As in send_bw: the last milestone is a hard stop, the wind-down
        # (final signaled WR, inflight drain) always simulates.
        tail = window + 32
        probe.begin("completed", (warmup, max(warmup + 1, total - tail)))
    posted = 0
    inflight = 0
    unsignaled = 0
    completed = 0
    t_start = None
    completed_at_mark = 0
    loop_ns = initiator.host.system.cpu.loop_overhead_ns
    while completed < total:
        while posted < total and inflight < window:
            yield from initiator.core.run(loop_ns)
            yield from techniques.charge_send_side(initiator, size)
            signaled = (posted % sig == sig - 1) or posted == total - 1
            wr = SendWR(wr_id=posted, opcode=opcode, addr=initiator.buf.addr,
                        length=size, lkey=initiator.mr.lkey, signaled=signaled,
                        remote_addr=target.buf.addr, rkey=target.mr.rkey)
            yield from initiator.post_send(wr)
            posted += 1
            inflight += 1
            if not signaled:
                unsignaled += 1
        cqes = yield from initiator.dataplane.wait_cq(
            initiator.send_cq, max_entries=16, mode=techniques.wait_mode
        )
        for cqe in cqes:
            assert cqe.ok
            retired = min(unsignaled, sig - 1) + 1
            unsignaled -= retired - 1
            inflight -= retired
            completed += retired
            # Mark the warmup crossing at the retirement that crosses it
            # (mirrors send_bw's per-completion `received == warmup` mark,
            # instead of the old post-batch check that over-counted the
            # crossing batch into the warmup).
            if t_start is None and completed >= warmup:
                t_start = sim.now
                completed_at_mark = completed
        if probe is not None and probe.enabled:
            skip = probe.observe(
                {"completed": completed, "posted": posted},
                (inflight, unsignaled, posted % sig, t_start is None),
            )
            if skip is not None:
                completed += skip.counters["completed"]
                posted += skip.counters["posted"]
    if t_start is None:
        # Degenerate run that never left the warmup: same accounting as
        # send_bw's fallback — zero duration, measured clamps to 1 below.
        t_start = sim.now
        completed_at_mark = completed
    measured = max(completed - completed_at_mark, 1)
    return BwResult(size=size, iters=measured, window=window,
                    duration_ns=sim.now - t_start)


def write_bw(sim, initiator, target, size, iters=400, window=128, warmup=64,
             techniques: Techniques = Techniques(), fastforward=None):
    """One-sided write streaming (initiator-measured)."""
    return _one_sided_bw(sim, initiator, target, Opcode.RDMA_WRITE, size,
                         iters, window, warmup, techniques, fastforward)


def read_bw(sim, initiator, target, size, iters=400, window=128, warmup=64,
            techniques: Techniques = Techniques(), fastforward=None):
    """One-sided read streaming (initiator-measured)."""
    return _one_sided_bw(sim, initiator, target, Opcode.RDMA_READ, size,
                         iters, window, warmup, techniques, fastforward)
