"""N→1 incast driver: many senders stream RDMA writes at one receiver.

The scale-out stress test the source-port-only fabric gets wrong: with
``rx_contention`` off every sender's port runs at full rate and the
receiver absorbs N links' worth of bandwidth; with it on (the default
here) the flows share the receiver's switch output port and the aggregate
receive rate caps at one link's bandwidth — with a bounded buffer, tail
drops feed the RC retransmit machinery.

Used by ``benchmarks/bench_incast.py`` (N/dataplane sweep), the
``repro incast`` CLI subcommand, ``tools/check_incast.py`` and the
regression tests in ``tests/test_incast.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator, Optional

from repro.cluster import Fabric, build_cluster
from repro.core.endpoint import Endpoint, connect, make_endpoint
from repro.errors import ConfigError
from repro.hw.profiles import RxContentionProfile, get_profile
from repro.sim import Simulator
from repro.units import to_gbit_per_s
from repro.verbs.wr import Opcode, SendWR

#: Start offsets between sender loops (ns per sender index): real incast
#: senders are not clock-locked, and the skew keeps same-instant resource
#: grabs (heap-order coin flips) out of the model.
SENDER_SKEW_NS = 3.0


@dataclass(frozen=True)
class IncastConfig:
    """One incast run's parameters."""

    system: str = "L"
    #: Dataplane kind on every endpoint ("bypass"/"cord").
    dataplane: str = "bypass"
    senders: int = 8
    size: int = 64 * 1024
    msgs_per_sender: int = 32
    #: Per-sender write window (in-flight cap; clamped to sq_depth).
    window: int = 16
    seed: int = 7
    #: Receiver-side contention: the point of the exercise.  ``False``
    #: reproduces the legacy source-port-only fabric for comparison.
    rx_contention: bool = True
    #: Switch output-port buffer in bytes; ``None`` = unbounded (no drops).
    buffer_bytes: Optional[int] = None
    chunk_bytes: Optional[int] = None

    def __post_init__(self):
        if self.senders < 1:
            raise ConfigError(f"need at least one sender, got {self.senders}")
        if self.msgs_per_sender < 1:
            raise ConfigError(
                f"need at least one message per sender, got {self.msgs_per_sender}"
            )

    def with_(self, **kwargs) -> "IncastConfig":
        return replace(self, **kwargs)


@dataclass
class IncastResult:
    """Aggregate + per-flow outcome of one incast run."""

    config: IncastConfig
    #: First sender's loop start → last flow completion.
    duration_ns: float
    #: Per-sender goodput (payload bits over the flow's own lifetime).
    flow_goodputs_gbit: tuple
    #: Peak switch output-queue occupancy at the receiver (0 when
    #: rx_contention is off).
    rx_queue_peak_bytes: int
    #: Messages lost in the fabric (switch tail drops; 0 when unbounded).
    messages_dropped: int
    #: RC loss recovery across all NICs.
    retransmits: int
    ack_timeouts: int

    @property
    def bytes_delivered(self) -> int:
        cfg = self.config
        return cfg.senders * cfg.msgs_per_sender * cfg.size

    @property
    def aggregate_gbit(self) -> float:
        """Payload rate absorbed by the receiver over the whole run."""
        if self.duration_ns <= 0:
            return 0.0
        return to_gbit_per_s(self.bytes_delivered / self.duration_ns)

    @property
    def per_flow_mean_gbit(self) -> float:
        flows = self.flow_goodputs_gbit
        return sum(flows) / len(flows) if flows else 0.0


def _flow(
    sim: Simulator,
    config: IncastConfig,
    sender: Endpoint,
    rcv: Endpoint,
    spans: list[tuple[float, float]],
    idx: int,
) -> Generator:
    """One sender: windowed signaled RDMA writes into its receiver buffer."""
    size = config.size
    total = config.msgs_per_sender
    window = min(config.window, sender.qp.sq_depth)
    loop_ns = sender.host.system.cpu.loop_overhead_ns
    yield 1.0 + SENDER_SKEW_NS * idx
    t0 = sim.now
    posted = 0
    completed = 0
    while completed < total:
        while posted < total and posted - completed < window:
            yield from sender.core.run(loop_ns)
            wr = SendWR(wr_id=posted, opcode=Opcode.RDMA_WRITE,
                        addr=sender.buf.addr, length=size,
                        lkey=sender.mr.lkey, signaled=True,
                        remote_addr=rcv.buf.addr, rkey=rcv.mr.rkey)
            yield from sender.post_send(wr)
            posted += 1
        cqes = yield from sender.wait_send(16)
        for cqe in cqes:
            assert cqe.ok
            completed += 1
    spans[idx] = (t0, sim.now)


def build_incast(
    sim: Simulator, config: IncastConfig
) -> tuple[Fabric, list, list[tuple[Endpoint, Endpoint]]]:
    """Build the cluster + one connected RC pair per sender.

    Host 0 is the receiver; hosts 1..N each run one sender.  All receiver
    endpoints share one pinned core (the sink is passive for RDMA writes).
    """
    profile = get_profile(config.system)
    rx = (RxContentionProfile(buffer_bytes=config.buffer_bytes)
          if config.rx_contention else False)
    fabric, hosts = build_cluster(
        sim, profile, config.senders + 1,
        chunk_bytes=config.chunk_bytes, rx_contention=rx,
    )
    buf_bytes = max(config.size, 4096)
    pairs: list[tuple[Endpoint, Endpoint]] = []

    def setup() -> Generator:
        rx_core = hosts[0].cpus.pin()
        for shost in hosts[1:]:
            s = yield from make_endpoint(shost, config.dataplane,
                                         buf_bytes=buf_bytes)
            r = yield from make_endpoint(hosts[0], config.dataplane,
                                         core=rx_core, buf_bytes=buf_bytes)
            yield from connect(s, r)
            pairs.append((s, r))

    sim.run(sim.process(setup()))
    return fabric, hosts, pairs


def _drive(
    sim: Simulator, config: IncastConfig, fabric: Fabric, hosts, pairs
) -> IncastResult:
    spans: list[tuple[float, float]] = [(0.0, 0.0)] * config.senders

    def root() -> Generator:
        procs = [
            sim.process(_flow(sim, config, s, r, spans, i),
                        name=f"incast.s{i + 1}")
            for i, (s, r) in enumerate(pairs)
        ]
        yield sim.all_of(procs)

    sim.run(sim.process(root(), name="incast.root"))
    t_first = min(t0 for t0, _ in spans)
    t_last = max(t1 for _, t1 in spans)
    flow_bytes = config.msgs_per_sender * config.size
    goodputs = tuple(
        to_gbit_per_s(flow_bytes / (t1 - t0)) if t1 > t0 else 0.0
        for t0, t1 in spans
    )
    peak = fabric.rx_port(0).peak_queued_bytes if config.rx_contention else 0
    return IncastResult(
        config=config,
        duration_ns=t_last - t_first,
        flow_goodputs_gbit=goodputs,
        rx_queue_peak_bytes=peak,
        messages_dropped=fabric.messages_dropped,
        retransmits=sum(h.nic.counters.retransmits for h in hosts),
        ack_timeouts=sum(h.nic.counters.ack_timeouts for h in hosts),
    )


def run_incast(config: IncastConfig) -> IncastResult:
    """One incast run on a fresh, seeded simulator."""
    sim = Simulator(seed=config.seed)
    fabric, hosts, pairs = build_incast(sim, config)
    return _drive(sim, config, fabric, hosts, pairs)


def run_incast_attributed(
    config: IncastConfig,
) -> tuple[IncastResult, Simulator]:
    """One incast run with a full trace kept for span attribution.

    Connection-setup records are cleared so spans cover measured writes
    only; callers should check ``sim.trace.dropped == 0`` before blaming.
    """
    from repro.sim.trace import Trace

    sim = Simulator(seed=config.seed, trace=Trace(enabled=True))
    sim.telemetry.enabled = True
    fabric, hosts, pairs = build_incast(sim, config)
    sim.trace.clear()
    result = _drive(sim, config, fabric, hosts, pairs)
    return result, sim
