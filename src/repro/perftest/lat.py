"""Latency microbenchmarks (``ib_send_lat`` / ``ib_read_lat`` / ``ib_write_lat``).

Conventions follow perftest:

- ``send_lat`` — two-sided ping-pong; reports RTT/2.
- ``write_lat`` — write ping-pong detected by *polling on memory* (the
  responder CPU never touches a CQ); reports RTT/2.
- ``read_lat`` — the client issues dependent RDMA reads; the server CPU is
  entirely passive; reports the full per-read latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.errors import ConfigError
from repro.perftest.techniques import Techniques
from repro.verbs.wr import Opcode, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.endpoint import Endpoint
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.sim.fastforward import FastForward, Skip


def _replicate_samples(samples: list, skip: "Skip") -> None:
    """Extend ``samples`` with the skipped cycles' (bit-identical) values.

    Valid because the probe only jumps from a fully periodic post-warmup
    region: the last ``skip.units`` samples are exactly the pattern every
    skipped period would have produced.
    """
    samples.extend(samples[-skip.units:] * skip.cycles)


@dataclass
class LatencyResult:
    """Per-size latency statistics (all times in ns)."""

    size: int
    iters: int
    samples: list[float] = field(default_factory=list, repr=False)

    @property
    def avg_ns(self) -> float:
        return float(np.mean(self.samples))

    @property
    def p50_ns(self) -> float:
        return float(np.percentile(self.samples, 50))

    @property
    def p99_ns(self) -> float:
        return float(np.percentile(self.samples, 99))

    @property
    def min_ns(self) -> float:
        return float(np.min(self.samples))

    @property
    def avg_us(self) -> float:
        return self.avg_ns / 1000.0


def _check_size(ep: "Endpoint", size: int) -> None:
    if size < 0 or size > ep.buf.length:
        raise ConfigError(f"message size {size} exceeds buffer {ep.buf.length}")


def send_lat(
    sim: "Simulator",
    client: "Endpoint",
    server: "Endpoint",
    size: int,
    iters: int = 200,
    warmup: int = 20,
    techniques: Techniques = Techniques(),
    fastforward: "FastForward" = None,
) -> Generator["Event", object, LatencyResult]:
    """Two-sided ping-pong; result is RTT/2 per iteration."""
    _check_size(client, size)
    _check_size(server, size)
    is_ud = client.qp.transport.value == "UD"
    result = LatencyResult(size=size, iters=iters)
    total = warmup + iters
    done = sim.event(name="send_lat.done")
    probe = fastforward
    if probe is not None:
        probe.begin("i", (warmup, total))

    def responder() -> Generator["Event", object, None]:
        for _ in range(total):
            yield from server.post_recv(
                RecvWR(wr_id=0, addr=server.buf.addr, length=server.buf.length,
                       lkey=server.mr.lkey)
            )
            cqes = yield from server.dataplane.wait_cq(
                server.recv_cq, max_entries=1, mode=techniques.wait_mode
            )
            assert cqes and cqes[0].ok
            yield from techniques.charge_recv_side(server, size)
            yield from techniques.charge_send_side(server, size)
            pong = SendWR(wr_id=0, opcode=Opcode.SEND, addr=server.buf.addr,
                          length=size, lkey=server.mr.lkey)
            if is_ud:
                pong.ah = client.addr
            yield from server.post_send(pong)

    def initiator() -> Generator["Event", object, None]:
        i = 0
        while i < total:
            yield from client.post_recv(
                RecvWR(wr_id=0, addr=client.buf.addr, length=client.buf.length,
                       lkey=client.mr.lkey)
            )
            t0 = sim.now
            yield from techniques.charge_send_side(client, size)
            ping = SendWR(wr_id=0, opcode=Opcode.SEND, addr=client.buf.addr,
                          length=size, lkey=client.mr.lkey)
            if is_ud:
                ping.ah = server.addr
            yield from client.post_send(ping)
            cqes = yield from client.dataplane.wait_cq(
                client.recv_cq, max_entries=1, mode=techniques.wait_mode
            )
            assert cqes and cqes[0].ok
            yield from techniques.charge_recv_side(client, size)
            sampled = i >= warmup
            if sampled:
                result.samples.append((sim.now - t0) / 2.0)
            i += 1
            if probe is not None and probe.enabled:
                skip = probe.observe({"i": i})
                if skip is not None:
                    if sampled:
                        _replicate_samples(result.samples, skip)
                    i += skip.counters["i"]
        done.succeed(result)

    sim.process(responder(), name="send_lat.server")
    sim.process(initiator(), name="send_lat.client")
    value = yield done
    return value  # type: ignore[return-value]


def read_lat(
    sim: "Simulator",
    client: "Endpoint",
    server: "Endpoint",
    size: int,
    iters: int = 200,
    warmup: int = 20,
    techniques: Techniques = Techniques(),
    fastforward: "FastForward" = None,
) -> Generator["Event", object, LatencyResult]:
    """Dependent RDMA reads; the server CPU does nothing (key for fig. 3)."""
    _check_size(client, size)
    result = LatencyResult(size=size, iters=iters)
    total = warmup + iters
    probe = fastforward
    if probe is not None:
        probe.begin("i", (warmup, total))
    i = 0
    while i < total:
        t0 = sim.now
        wr = SendWR(wr_id=0, opcode=Opcode.RDMA_READ, addr=client.buf.addr,
                    length=size, lkey=client.mr.lkey,
                    remote_addr=server.buf.addr, rkey=server.mr.rkey)
        yield from client.post_send(wr)
        cqes = yield from client.dataplane.wait_cq(
            client.send_cq, max_entries=1, mode=techniques.wait_mode
        )
        assert cqes and cqes[0].ok
        yield from techniques.charge_recv_side(client, size)
        sampled = i >= warmup
        if sampled:
            result.samples.append(sim.now - t0)
        i += 1
        if probe is not None and probe.enabled:
            skip = probe.observe({"i": i})
            if skip is not None:
                if sampled:
                    _replicate_samples(result.samples, skip)
                i += skip.counters["i"]
    return result


def write_lat(
    sim: "Simulator",
    client: "Endpoint",
    server: "Endpoint",
    size: int,
    iters: int = 200,
    warmup: int = 20,
    techniques: Techniques = Techniques(),
    fastforward: "FastForward" = None,
) -> Generator["Event", object, LatencyResult]:
    """Write ping-pong with memory polling (perftest's write_lat scheme:
    the data exchange is two RDMA writes, one per direction)."""
    _check_size(client, size)
    _check_size(server, size)
    if size < 1:
        raise ConfigError("write_lat needs at least 1 byte to poll on")
    result = LatencyResult(size=size, iters=iters)
    total = warmup + iters
    done = sim.event(name="write_lat.done")
    probe = fastforward
    if probe is not None:
        probe.begin("i", (warmup, total))

    def responder() -> Generator["Event", object, None]:
        # Arm the first watch before any ping can land; re-arm *before*
        # sending each pong so the next ping can never race the watch.
        watch = server.host.nic.watch_memory(server.buf.addr, size)
        for _ in range(total):
            yield from server.core.busy_poll(watch, server.host.system.cpu.poll_hit_ns)
            watch = server.host.nic.watch_memory(server.buf.addr, size)
            yield from techniques.charge_recv_side(server, size)
            yield from techniques.charge_send_side(server, size)
            wr = SendWR(wr_id=0, opcode=Opcode.RDMA_WRITE, addr=server.buf.addr,
                        length=size, lkey=server.mr.lkey,
                        remote_addr=client.buf.addr, rkey=client.mr.rkey)
            yield from server.post_send(wr)
            # Reap our own write completion so the SQ never fills.
            cqes = yield from server.dataplane.wait_cq(
                server.send_cq, max_entries=1, mode=techniques.wait_mode
            )
            assert cqes and cqes[0].ok

    def initiator() -> Generator["Event", object, None]:
        i = 0
        while i < total:
            watch = client.host.nic.watch_memory(client.buf.addr, size)
            t0 = sim.now
            yield from techniques.charge_send_side(client, size)
            wr = SendWR(wr_id=0, opcode=Opcode.RDMA_WRITE, addr=client.buf.addr,
                        length=size, lkey=client.mr.lkey,
                        remote_addr=server.buf.addr, rkey=server.mr.rkey)
            yield from client.post_send(wr)
            cqes = yield from client.dataplane.wait_cq(
                client.send_cq, max_entries=1, mode=techniques.wait_mode
            )
            assert cqes and cqes[0].ok
            yield from client.core.busy_poll(watch, client.host.system.cpu.poll_hit_ns)
            yield from techniques.charge_recv_side(client, size)
            sampled = i >= warmup
            if sampled:
                result.samples.append((sim.now - t0) / 2.0)
            i += 1
            if probe is not None and probe.enabled:
                skip = probe.observe({"i": i})
                if skip is not None:
                    if sampled:
                        _replicate_samples(result.samples, skip)
                    i += skip.counters["i"]
        done.succeed(result)

    sim.process(responder(), name="write_lat.server")
    sim.process(initiator(), name="write_lat.client")
    value = yield done
    return value  # type: ignore[return-value]
