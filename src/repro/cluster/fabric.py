"""The network fabric connecting host NICs.

Models a non-blocking switch (or a back-to-back cable for two hosts): each
host owns one TX port and one RX delivery path.  A message occupies the
*source* port for its serialization time — so fan-out traffic (alltoall)
correctly shares a single 100/200 Gbit/s port per host — then arrives at the
destination after the propagation delay.  Per-packet overheads are charged
arithmetically from the MTU (see :mod:`repro.hw.link` for rationale).

**Receiver-side contention** (opt-in via ``rx_contention=``): the source-only
model gives an N→1 incast unbounded aggregate receive bandwidth — every
sender's port runs at full rate and the arrivals just stack up at the
destination.  With an :class:`~repro.hw.profiles.RxContentionProfile`
attached, each host additionally owns an **RX ingress port** (a capacity-1
serial resource mirroring the TX side) fed by a **switch output queue**:
a message pays propagation, is admitted to the destination port's byte
buffer (tail-dropped on overflow when ``buffer_bytes`` is bounded — the RC
ACK-timeout machinery retransmits), then drains through the ingress port at
link rate before the NIC sees it.  Fan-in therefore sustains at most one
link's bandwidth at the receiver, and queue occupancy is exported as
telemetry plus an ``rx_port`` attribution stage.  With ``rx_contention``
off (the default) the transmit path is byte-for-byte the paper's two-node
model, so all committed goldens stay bit-identical.

Loopback (src == dst) bypasses the wire: the NIC hairpins the message at
PCIe bandwidth with a small fixed latency.  The paper's MPI runs forbid
shared memory, so intra-node traffic really does traverse the NIC.
Hairpin traffic *is* subject to an attached fault layer (scoped to the
host's ``loopback`` link — its own RNG stream), so ``FaultPlan`` loss and
degradation apply to intra-host ranks in multi-host MPI worlds too.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional, Union

from repro.errors import HardwareError
from repro.hw.profiles import CcProfile, NicProfile, RxContentionProfile
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.nic import Nic
    from repro.sim.engine import Simulator
    from repro.sim.events import Event

#: What callers may pass as ``rx_contention``: a profile, a bool toggle
#: (``True`` = unbounded-buffer defaults), or ``None`` (off).
RxContentionSpec = Union[None, bool, RxContentionProfile]

#: Wire-message kinds eligible for ECN marking: RC requests whose marked
#: arrival makes the responder NIC emit a CNP.  Responses/ACKs are left
#: unmarked — a mark there would reach the wrong end of the control loop.
_ECN_KINDS = frozenset({"send", "write", "read_req", "atomic"})


def _normalize_rx_contention(spec: RxContentionSpec) -> Optional[RxContentionProfile]:
    if spec is None or spec is False:
        return None
    if spec is True:
        return RxContentionProfile()
    if isinstance(spec, RxContentionProfile):
        return spec
    raise HardwareError(
        f"rx_contention must be None/bool/RxContentionProfile, got {spec!r}"
    )


class SwitchPort:
    """One switch output port: a byte buffer draining through a serial
    ingress resource at link rate.  Created per attached host when the
    fabric runs with receiver-side contention."""

    __slots__ = ("host_id", "resource", "buffer_bytes", "queued_bytes",
                 "peak_queued_bytes", "messages_dropped", "bytes_dropped",
                 "messages_marked")

    def __init__(self, host_id: int, resource: Resource,
                 buffer_bytes: Optional[int]):
        self.host_id = host_id
        self.resource = resource
        self.buffer_bytes = buffer_bytes
        self.queued_bytes = 0
        self.peak_queued_bytes = 0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Messages ECN-marked at admission (congestion control only).
        self.messages_marked = 0


class Fabric:
    """Switched fabric (or back-to-back wire) between host NICs."""

    def __init__(
        self,
        sim: "Simulator",
        profile: NicProfile,
        propagation_ns: float,
        loopback_latency_ns: float = 350.0,
        chunk_bytes: Optional[int] = None,
        rx_contention: RxContentionSpec = None,
        cc: Optional[CcProfile] = None,
        name: str = "fabric",
    ):
        self.sim = sim
        self.profile = profile
        self.propagation_ns = propagation_ns
        self.loopback_latency_ns = loopback_latency_ns
        #: Optional transmission granularity for fairness experiments: large
        #: messages are chopped into chunks so flows interleave on the port.
        self.chunk_bytes = chunk_bytes
        #: Receiver-side contention model (see module docstring); ``None``
        #: keeps the source-port-only semantics bit-identical to the seed.
        self.rx_contention = _normalize_rx_contention(rx_contention)
        #: Congestion-control profile: enables WRED/ECN marking at the
        #: switch output queues (and tells attached NICs to run the CNP /
        #: rate-limiter loop).  Requires the receiver-side contention
        #: model — marking keys off switch queue occupancy.
        self.cc = cc
        if cc is not None and self.rx_contention is None:
            raise HardwareError(
                "congestion control needs the receiver-side contention "
                "model (pass rx_contention=... as well): ECN marking keys "
                "off switch output-queue occupancy"
            )
        self.name = name
        self._nics: dict[int, "Nic"] = {}
        self._tx_ports: dict[int, Resource] = {}
        self._rx_ports: dict[int, SwitchPort] = {}
        #: Per-destination-port WRED marking streams, created on first
        #: congested admission (dedicated streams: enabling CC never
        #: perturbs any other component's draws).
        self._ecn_rng: dict[int, object] = {}
        #: Delivered traffic only — messages lost on the wire or tail-dropped
        #: at a switch buffer land in the ``*_dropped`` counters instead.
        self.bytes_carried = 0
        self.messages_carried = 0
        self.messages_dropped = 0
        self.bytes_dropped = 0
        #: Loss-site split of ``messages_dropped``: every lost message
        #: lands in exactly one of these (their sum always equals the
        #: total), so tests and postmortems can tell a fault-injected
        #: hairpin loss from a wire loss from a switch-buffer tail drop.
        self.drops_hairpin = 0
        self.drops_wire = 0
        self.drops_rxq = 0
        #: Optional fault layer (see :mod:`repro.faults`).  None keeps the
        #: fabric lossless at the cost of one branch per transmit.
        self.faults = None
        if self.rx_contention is not None:
            # RX backlog lives in parked Resource requests, not heap events:
            # expose it to steady-state cycle probes or fast-forward could
            # declare a period while a queue is still draining.
            sim.register_state_provider(self._rx_queue_state)

    @property
    def lossy(self) -> bool:
        """Can this fabric ever drop a message?  True with a fault layer
        attached or a bounded switch buffer — RC senders arm ACK-timeout
        timers exactly when this holds."""
        rx = self.rx_contention
        return self.faults is not None or (
            rx is not None and rx.buffer_bytes is not None
        )

    def inject_faults(self, plan) -> "object":
        """Attach a :class:`~repro.faults.FaultPlan` (or a prebuilt
        injector) to this fabric; returns the active injector."""
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(plan, FaultPlan):
            plan = FaultInjector(self.sim, plan, scope=self.name)
        self.faults = plan
        return plan

    # -- wiring ---------------------------------------------------------------

    def attach_nic(self, nic: "Nic") -> None:
        if nic.host_id in self._nics:
            raise HardwareError(f"host {nic.host_id} already attached to {self.name}")
        self._nics[nic.host_id] = nic
        self._tx_ports[nic.host_id] = Resource(
            self.sim, capacity=1, name=f"{self.name}.tx{nic.host_id}"
        )
        rx = self.rx_contention
        if rx is not None:
            self._rx_ports[nic.host_id] = SwitchPort(
                nic.host_id,
                Resource(self.sim, capacity=1, name=f"{self.name}.rx{nic.host_id}"),
                rx.buffer_bytes,
            )

    def nic(self, host_id: int) -> "Nic":
        try:
            return self._nics[host_id]
        except KeyError:
            raise HardwareError(f"no host {host_id} on {self.name}") from None

    def rx_port(self, host_id: int) -> SwitchPort:
        """The switch output port feeding ``host_id`` (rx_contention only)."""
        try:
            return self._rx_ports[host_id]
        except KeyError:
            raise HardwareError(
                f"no rx port for host {host_id} on {self.name} "
                "(is rx_contention enabled?)"
            ) from None

    def _rx_queue_state(self) -> tuple:
        return tuple(
            (hid, port.queued_bytes, len(port.resource.users),
             len(port.resource.queue))
            for hid, port in sorted(self._rx_ports.items())
        )

    # -- congestion marking ---------------------------------------------------

    def _maybe_mark_ecn(self, port: SwitchPort, nbytes: int,
                        payload: object) -> None:
        """WRED/threshold ECN at switch-queue admission (CC enabled only).

        Marking keys off the occupancy the message *finds* (not counting
        itself): always at/above ``kmax_bytes``, linearly up to ``pmax``
        between the thresholds (one draw from the port's dedicated ECN
        stream), never below ``kmin_bytes``.  Only RC request kinds are
        eligible — their responder answers with a CNP.
        """
        if getattr(payload, "kind", None) not in _ECN_KINDS:
            return
        cc = self.cc
        q = port.queued_bytes
        if q < cc.kmin_bytes:
            return
        if q < cc.kmax_bytes:
            rng = self._ecn_rng.get(port.host_id)
            if rng is None:
                rng = self._ecn_rng[port.host_id] = self.sim.rng.stream(
                    f"{self.name}.ecn{port.host_id}"
                )
            frac = (q - cc.kmin_bytes) / (cc.kmax_bytes - cc.kmin_bytes)
            if rng.random() >= cc.pmax * frac:  # type: ignore[attr-defined]
                return
        payload.ecn = True  # type: ignore[attr-defined]
        port.messages_marked += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(f"host{port.host_id}").counter("fabric.ecn.marked").inc(
                nbytes, key=payload.kind  # type: ignore[attr-defined]
            )
        trace = self.sim.trace
        if trace.enabled:
            trace.emit(self.sim.now, "fabric", "ecn_mark",
                       host=port.host_id, kind=payload.kind,  # type: ignore[attr-defined]
                       size=nbytes, queued=q)

    # -- timing ---------------------------------------------------------------

    def serialization_ns(self, nbytes: int) -> float:
        packets = max(1, math.ceil(nbytes / self.profile.mtu)) if nbytes > 0 else 1
        return packets * self.profile.per_packet_ns + nbytes / self.profile.link_bw

    def _loopback_ns(self, nbytes: int) -> float:
        packets = max(1, math.ceil(nbytes / self.profile.mtu)) if nbytes > 0 else 1
        return packets * self.profile.per_packet_ns + nbytes / self.profile.pcie_bw

    # -- transmission -------------------------------------------------------------

    def transmit(
        self, src_host: int, dst_host: int, nbytes: int, payload: object
    ) -> Generator["Event", object, None]:
        """Carry ``payload`` from ``src_host`` to ``dst_host``.

        Returns when the last bit leaves the source port; delivery happens
        ``propagation_ns`` later (plus receiver-port queueing when
        ``rx_contention`` is on).  FIFO per source port preserves per-QP
        ordering (PSN reordering at the receiver covers the rest).
        """
        if nbytes < 0:
            raise HardwareError(f"negative transmit size: {nbytes}")
        dst = self.nic(dst_host)

        if src_host == dst_host:
            # NIC hairpin: PCIe out and back in, no wire — but the same
            # fault hook applies, scoped to the host's loopback link.
            yield self._loopback_ns(nbytes)
            extra = 0.0
            faults = self.faults
            if faults is not None:
                verdict = faults.on_transmit(
                    src_host, dst_host, self.sim.now,
                    getattr(payload, "kind", "raw"), nbytes,
                    self.loopback_latency_ns,
                )
                if verdict is None:
                    self.messages_dropped += 1
                    self.bytes_dropped += nbytes
                    self.drops_hairpin += 1
                    return  # dropped in the hairpin: never delivered
                extra = verdict
            self.bytes_carried += nbytes
            self.messages_carried += 1
            self.sim.call_later(self.loopback_latency_ns + extra,
                                dst.deliver, payload)
            return

        port = self._tx_ports[src_host]
        if self.chunk_bytes is None or nbytes <= self.chunk_bytes:
            req = port.request()
            yield req
            try:
                yield self.serialization_ns(nbytes)
            finally:
                port.release(req)
        else:
            # Chunked: the port is re-acquired per chunk so concurrent flows
            # interleave instead of suffering whole-message head-of-line.
            # Packet charges follow *cumulative* byte boundaries — a chunk
            # pays for the packets its bytes complete — so the total packet
            # count equals the unchunked ceil(nbytes/mtu) bit-exactly even
            # when chunk_bytes is not an MTU multiple.
            mtu = self.profile.mtu
            per_packet_ns = self.profile.per_packet_ns
            link_bw = self.profile.link_bw
            sent = 0
            packets_charged = 0
            while sent < nbytes:
                chunk = min(nbytes - sent, self.chunk_bytes)
                sent += chunk
                packets = max(1, math.ceil(sent / mtu)) - packets_charged
                req = port.request()
                yield req
                try:
                    yield packets * per_packet_ns + chunk / link_bw
                finally:
                    port.release(req)
                packets_charged += packets

        extra = 0.0
        faults = self.faults
        if faults is not None:
            verdict = faults.on_transmit(
                src_host, dst_host, self.sim.now,
                getattr(payload, "kind", "raw"), nbytes, self.propagation_ns,
            )
            if verdict is None:
                self.messages_dropped += 1
                self.bytes_dropped += nbytes
                self.drops_wire += 1
                return  # dropped on the wire: never delivered
            extra = verdict
        if self.rx_contention is not None:
            self.sim.spawn(
                self._rx_deliver(dst, nbytes, payload,
                                 self.propagation_ns + extra),
                name=f"{self.name}.rxq",
            )
            return
        self.bytes_carried += nbytes
        self.messages_carried += 1
        self.sim.call_later(self.propagation_ns + extra, dst.deliver, payload)

    def _rx_deliver(
        self, dst: "Nic", nbytes: int, payload: object, delay: float
    ) -> Generator["Event", object, None]:
        """Receiver side of one message: propagation, switch output-queue
        admission (tail drop on overflow), then drain through the host's
        RX ingress port at link rate."""
        if delay > 0:
            yield delay
        port = self._rx_ports[dst.host_id]
        if (port.buffer_bytes is not None
                and port.queued_bytes + nbytes > port.buffer_bytes):
            # Tail drop at the switch output queue.  The RC ACK-timeout
            # machinery recovers exactly as for a wire-fault drop (the NIC
            # arms timers whenever ``self.lossy`` holds).
            port.messages_dropped += 1
            port.bytes_dropped += nbytes
            self.messages_dropped += 1
            self.bytes_dropped += nbytes
            self.drops_rxq += 1
            tele = self.sim.telemetry
            if tele.enabled:
                reg = tele.scope(f"host{dst.host_id}")
                reg.counter("fabric.rx.dropped").inc(
                    nbytes, key=getattr(payload, "kind", "raw"))
            trace = self.sim.trace
            if trace.enabled:
                trace.emit(self.sim.now, "fabric", "rx_drop",
                           host=dst.host_id,
                           kind=getattr(payload, "kind", "raw"),
                           size=nbytes, queued=port.queued_bytes)
            return
        if self.cc is not None:
            self._maybe_mark_ecn(port, nbytes, payload)
        port.queued_bytes += nbytes
        if port.queued_bytes > port.peak_queued_bytes:
            port.peak_queued_bytes = port.queued_bytes
        tele = self.sim.telemetry
        if tele.enabled:
            reg = tele.scope(f"host{dst.host_id}")
            reg.gauge("fabric.rxq.bytes").set(port.queued_bytes)
            reg.histogram("fabric.rxq.occupancy").observe(port.queued_bytes)
        trace = self.sim.trace
        if trace.enabled:
            span = getattr(payload, "span", None)
            if span is not None:
                trace.emit(self.sim.now, "span", "mark", span=span,
                           stage="rx_port", host=dst.host_id, comp="wire")
        req = port.resource.request()
        yield req
        try:
            yield self.serialization_ns(nbytes)
        finally:
            port.resource.release(req)
            port.queued_bytes -= nbytes
        if tele.enabled:
            tele.scope(f"host{dst.host_id}").gauge(
                "fabric.rxq.bytes").set(port.queued_bytes)
        self.bytes_carried += nbytes
        self.messages_carried += 1
        dst.deliver(payload)
