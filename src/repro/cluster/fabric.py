"""The network fabric connecting host NICs.

Models a non-blocking switch (or a back-to-back cable for two hosts): each
host owns one TX port and one RX delivery path.  A message occupies the
*source* port for its serialization time — so fan-out traffic (alltoall)
correctly shares a single 100/200 Gbit/s port per host — then arrives at the
destination after the propagation delay.  Per-packet overheads are charged
arithmetically from the MTU (see :mod:`repro.hw.link` for rationale).

Loopback (src == dst) bypasses the wire: the NIC hairpins the message at
PCIe bandwidth with a small fixed latency.  The paper's MPI runs forbid
shared memory, so intra-node traffic really does traverse the NIC.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import HardwareError
from repro.hw.profiles import NicProfile
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.nic import Nic
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


class Fabric:
    """Switched fabric (or back-to-back wire) between host NICs."""

    def __init__(
        self,
        sim: "Simulator",
        profile: NicProfile,
        propagation_ns: float,
        loopback_latency_ns: float = 350.0,
        chunk_bytes: Optional[int] = None,
        name: str = "fabric",
    ):
        self.sim = sim
        self.profile = profile
        self.propagation_ns = propagation_ns
        self.loopback_latency_ns = loopback_latency_ns
        #: Optional transmission granularity for fairness experiments: large
        #: messages are chopped into chunks so flows interleave on the port.
        self.chunk_bytes = chunk_bytes
        self.name = name
        self._nics: dict[int, "Nic"] = {}
        self._tx_ports: dict[int, Resource] = {}
        self.bytes_carried = 0
        self.messages_carried = 0
        #: Optional fault layer (see :mod:`repro.faults`).  None keeps the
        #: fabric lossless at the cost of one branch per transmit.
        self.faults = None

    def inject_faults(self, plan) -> "object":
        """Attach a :class:`~repro.faults.FaultPlan` (or a prebuilt
        injector) to this fabric; returns the active injector."""
        from repro.faults import FaultInjector, FaultPlan

        if isinstance(plan, FaultPlan):
            plan = FaultInjector(self.sim, plan, scope=self.name)
        self.faults = plan
        return plan

    # -- wiring ---------------------------------------------------------------

    def attach_nic(self, nic: "Nic") -> None:
        if nic.host_id in self._nics:
            raise HardwareError(f"host {nic.host_id} already attached to {self.name}")
        self._nics[nic.host_id] = nic
        self._tx_ports[nic.host_id] = Resource(
            self.sim, capacity=1, name=f"{self.name}.tx{nic.host_id}"
        )

    def nic(self, host_id: int) -> "Nic":
        try:
            return self._nics[host_id]
        except KeyError:
            raise HardwareError(f"no host {host_id} on {self.name}") from None

    # -- timing ---------------------------------------------------------------

    def serialization_ns(self, nbytes: int) -> float:
        packets = max(1, math.ceil(nbytes / self.profile.mtu)) if nbytes > 0 else 1
        return packets * self.profile.per_packet_ns + nbytes / self.profile.link_bw

    def _loopback_ns(self, nbytes: int) -> float:
        packets = max(1, math.ceil(nbytes / self.profile.mtu)) if nbytes > 0 else 1
        return packets * self.profile.per_packet_ns + nbytes / self.profile.pcie_bw

    # -- transmission -------------------------------------------------------------

    def transmit(
        self, src_host: int, dst_host: int, nbytes: int, payload: object
    ) -> Generator["Event", object, None]:
        """Carry ``payload`` from ``src_host`` to ``dst_host``.

        Returns when the last bit leaves the source port; delivery happens
        ``propagation_ns`` later.  FIFO per source port preserves per-QP
        ordering (PSN reordering at the receiver covers the rest).
        """
        if nbytes < 0:
            raise HardwareError(f"negative transmit size: {nbytes}")
        dst = self.nic(dst_host)

        if src_host == dst_host:
            # NIC hairpin: PCIe out and back in, no wire.
            yield self._loopback_ns(nbytes)
            self.bytes_carried += nbytes
            self.messages_carried += 1
            self.sim.call_later(self.loopback_latency_ns, dst.deliver, payload)
            return

        port = self._tx_ports[src_host]
        if self.chunk_bytes is None or nbytes <= self.chunk_bytes:
            req = port.request()
            yield req
            try:
                yield self.serialization_ns(nbytes)
            finally:
                port.release(req)
        else:
            # Chunked: the port is re-acquired per chunk so concurrent flows
            # interleave instead of suffering whole-message head-of-line.
            remaining = nbytes
            while remaining > 0:
                chunk = min(remaining, self.chunk_bytes)
                req = port.request()
                yield req
                try:
                    yield self.serialization_ns(chunk)
                finally:
                    port.release(req)
                remaining -= chunk
        self.bytes_carried += nbytes
        self.messages_carried += 1
        faults = self.faults
        if faults is not None:
            extra = faults.on_transmit(
                src_host, dst_host, self.sim.now,
                getattr(payload, "kind", "raw"), nbytes, self.propagation_ns,
            )
            if extra is None:
                return  # dropped on the wire: never delivered
            if extra:
                self.sim.call_later(self.propagation_ns + extra,
                                    dst.deliver, payload)
                return
        self.sim.call_later(self.propagation_ns, dst.deliver, payload)
