"""Cluster wiring: hosts (cores + memory + NIC + kernel) and the fabric."""

from repro.cluster.fabric import Fabric, SwitchPort
from repro.cluster.host import Host
from repro.cluster.builder import build_cluster, build_pair

__all__ = ["Fabric", "SwitchPort", "Host", "build_cluster", "build_pair"]
