"""Cluster wiring: hosts (cores + memory + NIC + kernel) and the fabric."""

from repro.cluster.fabric import Fabric
from repro.cluster.host import Host
from repro.cluster.builder import build_cluster, build_pair

__all__ = ["Fabric", "Host", "build_cluster", "build_pair"]
