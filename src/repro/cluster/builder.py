"""Convenience constructors for common testbed shapes."""

from __future__ import annotations

from typing import Optional, Union

from repro.cluster.fabric import Fabric, RxContentionSpec
from repro.cluster.host import Host
from repro.errors import ConfigError
from repro.hw.profiles import CcProfile, RxContentionProfile, SystemProfile
from repro.sim.engine import Simulator

#: What callers may pass as ``congestion``: "auto" (follow the system
#: profile), "off"/None (disabled), "dcqcn" (profile's ``cc`` or DCQCN
#: defaults), or an explicit :class:`CcProfile`.
CongestionSpec = Union[str, None, CcProfile]


def _normalize_congestion(
    spec: CongestionSpec, system: SystemProfile
) -> Optional[CcProfile]:
    if spec == "auto":
        return system.cc
    if spec is None or spec == "off":
        return None
    if spec == "dcqcn":
        return system.cc or CcProfile()
    if isinstance(spec, CcProfile):
        return spec
    raise ConfigError(
        f"congestion must be 'auto'/'off'/'dcqcn'/None/CcProfile, got {spec!r}"
    )


def build_cluster(
    sim: Simulator,
    system: SystemProfile,
    num_hosts: int,
    chunk_bytes: Optional[int] = None,
    rx_contention: Union[str, RxContentionSpec] = "auto",
    congestion: CongestionSpec = "auto",
) -> tuple[Fabric, list[Host]]:
    """Build ``num_hosts`` hosts on one fabric.

    ``rx_contention`` selects the receiver-side contention model (see
    :mod:`repro.cluster.fabric`): ``"auto"`` (default) enables it only for
    clusters larger than the paper's two-node testbeds — where fan-in is
    possible — taking ``system.rx_contention`` when set and falling back
    to an unbounded-buffer :class:`RxContentionProfile`.  Pass
    ``True``/``False``/a profile to force it either way.  Two-host builds
    stay bit-identical to the committed goldens under ``"auto"``.

    ``congestion`` selects end-to-end congestion control (ECN marking +
    DCQCN-style rate limiting; see :mod:`repro.hw.congestion`): ``"auto"``
    (default) follows ``system.cc`` — ``None`` on the shipped profiles, so
    CC is strictly opt-in and all committed goldens stay bit-identical.
    Pass ``"dcqcn"`` (profile's ``cc`` or the DCQCN defaults), ``"off"``,
    or an explicit :class:`CcProfile`.  Requires the receiver-side
    contention model (marking keys off switch queue occupancy).
    """
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    cc = _normalize_congestion(congestion, system)
    if rx_contention == "auto":
        rx: RxContentionSpec = None
        if num_hosts > 2 or cc is not None:
            rx = system.rx_contention or RxContentionProfile()
    else:
        rx = rx_contention  # type: ignore[assignment]
    fabric = Fabric(
        sim,
        system.nic,
        propagation_ns=system.propagation_ns,
        chunk_bytes=chunk_bytes,
        rx_contention=rx,
        cc=cc,
        name=f"fabric:{system.name}",
    )
    hosts = []
    for host_id in range(num_hosts):
        host = Host(sim, system, host_id)
        host.join_fabric(fabric)
        hosts.append(host)
    return fabric, hosts


def build_pair(
    sim: Simulator, system: SystemProfile, chunk_bytes: Optional[int] = None
) -> tuple[Fabric, Host, Host]:
    """The paper's two-node testbed (back-to-back or one switch hop)."""
    fabric, hosts = build_cluster(sim, system, 2, chunk_bytes=chunk_bytes)
    return fabric, hosts[0], hosts[1]
