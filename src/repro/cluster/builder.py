"""Convenience constructors for common testbed shapes."""

from __future__ import annotations

from typing import Optional

from repro.cluster.fabric import Fabric
from repro.cluster.host import Host
from repro.hw.profiles import SystemProfile
from repro.sim.engine import Simulator


def build_cluster(
    sim: Simulator,
    system: SystemProfile,
    num_hosts: int,
    chunk_bytes: Optional[int] = None,
) -> tuple[Fabric, list[Host]]:
    """Build ``num_hosts`` hosts on one fabric."""
    if num_hosts < 1:
        raise ValueError(f"need at least one host, got {num_hosts}")
    fabric = Fabric(
        sim,
        system.nic,
        propagation_ns=system.propagation_ns,
        chunk_bytes=chunk_bytes,
        name=f"fabric:{system.name}",
    )
    hosts = []
    for host_id in range(num_hosts):
        host = Host(sim, system, host_id)
        host.join_fabric(fabric)
        hosts.append(host)
    return fabric, hosts


def build_pair(
    sim: Simulator, system: SystemProfile, chunk_bytes: Optional[int] = None
) -> tuple[Fabric, Host, Host]:
    """The paper's two-node testbed (back-to-back or one switch hop)."""
    fabric, hosts = build_cluster(sim, system, 2, chunk_bytes=chunk_bytes)
    return fabric, hosts[0], hosts[1]
