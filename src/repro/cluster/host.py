"""A host: cores + memory + NIC + kernel, attached to a fabric."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.cpu import CpuSet
from repro.hw.memory import AddressSpace, MemoryModel
from repro.hw.nic import Nic
from repro.hw.profiles import SystemProfile
from repro.kernel.kernel import Kernel
from repro.verbs.device import Device
from repro.verbs.mr import MrTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.fabric import Fabric
    from repro.sim.engine import Simulator


class Host:
    """One node of the testbed."""

    def __init__(self, sim: "Simulator", system: SystemProfile, host_id: int):
        self.sim = sim
        self.system = system
        self.host_id = host_id
        self.name = f"host{host_id}"
        self.cpus = CpuSet(sim, system, host_name=self.name)
        self.mem_model = MemoryModel(system.memory)
        self.mr_table = MrTable()
        self.nic = Nic(sim, system.nic, host_id, name=f"{self.name}.nic")
        self.kernel = Kernel(self)
        self.device = Device(self)
        self.fabric: "Fabric" = None  # type: ignore[assignment]  # set by join_fabric
        self._spaces: list[AddressSpace] = []

    def join_fabric(self, fabric: "Fabric") -> None:
        self.fabric = fabric
        fabric.attach_nic(self.nic)
        self.nic.attach(fabric, self.mr_table)

    def new_address_space(self, name: str = "") -> AddressSpace:
        """A fresh process address space on this host."""
        space = AddressSpace(name or f"{self.name}.as{len(self._spaces)}")
        self._spaces.append(space)
        return space

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.host_id} system={self.system.name}>"
