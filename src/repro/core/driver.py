"""mlx5-like drivers: the WQE-building fast path.

The paper's key implementation point (§3/§4): the user-level driver in
bypass mode and the kernel-level driver in CoRD are *behaviourally
equivalent* — CoRD moved ~250 lines into the kernel without changing what
they do.  Both build the same WQE; the only difference is where the CPU
executes them and that CoRD pays the syscall + ioctl-style argument
serialization around them.

This module computes the CPU cost of that fast path so both dataplanes
share one source of truth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hw.profiles import SystemProfile

#: Fixed cost of the inline-WQE payload store (vs. a full memcpy call).
INLINE_COPY_OVERHEAD_NS = 10.0

if TYPE_CHECKING:  # pragma: no cover
    from repro.verbs.qp import QueuePair
    from repro.verbs.wr import RecvWR, SendWR


def should_inline(system: SystemProfile, qp: "QueuePair", wr: "SendWR", cord: bool) -> bool:
    """Decide whether this send goes inline (payload copied into the WQE).

    Inline is a latency win for tiny messages (no payload DMA fetch).  The
    CoRD prototype on system A lacks inline support (§5, fig. 5a) — that is
    the source of the bimodal overhead the paper reports.
    """
    if wr.length == 0 or wr.length > qp.max_inline:
        return False
    if not wr.opcode.reads_local_memory:
        return False
    if cord and not system.cord_inline_supported:
        return False
    return True


def post_send_cpu_ns(system: SystemProfile, wr: "SendWR", inline: bool) -> float:
    """Driver CPU time to build and submit one send WQE (either level)."""
    cost = system.cpu.post_wqe_ns
    if inline:
        # Payload is stored into the WQE by the CPU: a hand-unrolled,
        # cache-hot copy, much cheaper than a general memcpy call.
        cost += INLINE_COPY_OVERHEAD_NS + wr.length / system.memory.memcpy_bw
    return cost


def post_recv_cpu_ns(system: SystemProfile) -> float:
    """Driver CPU time to link one recv WQE and bump the doorbell record."""
    return system.cpu.post_wqe_ns * 0.7


def doorbell_cpu_ns(system: SystemProfile) -> float:
    """MMIO doorbell write cost (paid by whoever rings it)."""
    return system.nic.doorbell_ns
