"""CoRD — the Converged RDMA Dataplane (the paper's contribution).

The dataplane is the layer between the application and the NIC that charges
the CPU costs of ``post_send`` / ``post_recv`` / ``poll_cq``:

- :class:`~repro.core.dataplane.BypassDataplane` — classical RDMA: the
  user-space driver builds the WQE and rings the doorbell directly
  (fig. 2b).
- :class:`~repro.core.dataplane.CordDataplane` — CoRD: every dataplane
  operation is a system call; the kernel-level driver (behaviourally
  identical to the user one) builds the WQE, the CoRD policy chain runs,
  then the kernel rings the doorbell (fig. 2c).

Policies (:mod:`repro.core.policy`) are lightweight, non-blocking kernel
interposition hooks: QoS rate limiting, security ACLs, isolation quotas and
observability — the OS-control payoff the paper argues for.
"""

from repro.core.dataplane import (
    BypassDataplane,
    CordDataplane,
    Dataplane,
    WaitMode,
)
from repro.core.policy import OpContext, Policy, PolicyChain
from repro.core.endpoint import Endpoint, make_rc_pair, make_ud_pair

__all__ = [
    "Dataplane",
    "BypassDataplane",
    "CordDataplane",
    "WaitMode",
    "Policy",
    "PolicyChain",
    "OpContext",
    "Endpoint",
    "make_rc_pair",
    "make_ud_pair",
]
