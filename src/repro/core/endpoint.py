"""Endpoints: everything one communicating thread needs, wired together.

An :class:`Endpoint` bundles a pinned core, a dataplane (bypass or CoRD), a
device context, PD, CQs, one QP and a registered message buffer — the
boilerplate every benchmark, test and example would otherwise repeat.  The
pair/graph constructors connect endpoints across hosts.

All constructors are generators (control-plane verbs cost simulated time);
run them inside a simulation process::

    def setup():
        client, server = yield from make_rc_pair(host_a, host_b, "bypass", "cord")
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.core.dataplane import BypassDataplane, CordDataplane, Dataplane
from repro.core.policy import PolicyChain
from repro.errors import ConfigError
from repro.hw.cpu import Core
from repro.hw.memory import Buffer
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegionV
from repro.verbs.qp import QueuePair, Transport
from repro.verbs.wr import AccessFlags

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.events import Event

#: Default message-buffer size registered per endpoint.
DEFAULT_BUF_BYTES = 16 * 1024 * 1024


def make_dataplane(
    kind: str,
    host: "Host",
    core: Core,
    policies: Optional[PolicyChain] = None,
    tenant: str = "default",
) -> Dataplane:
    """Dataplane factory: ``"bypass"``/``"bp"`` or ``"cord"``/``"cd"``."""
    kind = kind.lower()
    if kind in ("bypass", "bp"):
        if policies is not None and len(policies):
            raise ConfigError("bypass dataplane cannot enforce policies (that's the point)")
        return BypassDataplane(host, core, tenant=tenant)
    if kind in ("cord", "cd"):
        return CordDataplane(host, core, policies=policies, tenant=tenant)
    raise ConfigError(f"unknown dataplane kind {kind!r} (want 'bypass' or 'cord')")


class Endpoint:
    """A fully wired communication endpoint."""

    def __init__(
        self,
        host: "Host",
        core: Core,
        dataplane: Dataplane,
        ctx,
        pd,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        qp: QueuePair,
        buf: Buffer,
        mr: MemoryRegionV,
    ):
        self.host = host
        self.core = core
        self.dataplane = dataplane
        self.ctx = ctx
        self.pd = pd
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.qp = qp
        self.buf = buf
        self.mr = mr

    @property
    def sim(self):
        return self.host.sim

    @property
    def addr(self) -> tuple[int, int]:
        """(host_id, qpn) — what a peer needs to reach this endpoint."""
        return (self.host.host_id, self.qp.qpn)

    # -- dataplane shortcuts -------------------------------------------------------

    def post_send(self, wr) -> Generator["Event", object, None]:
        yield from self.dataplane.post_send(self.qp, wr)

    def post_recv(self, wr) -> Generator["Event", object, None]:
        yield from self.dataplane.post_recv(self.qp, wr)

    def poll_send(self, max_entries: int = 16):
        return self.dataplane.poll_cq(self.send_cq, max_entries)

    def poll_recv(self, max_entries: int = 16):
        return self.dataplane.poll_cq(self.recv_cq, max_entries)

    def wait_send(self, max_entries: int = 16, mode=None):
        from repro.core.dataplane import WaitMode

        return self.dataplane.wait_cq(
            self.send_cq, max_entries, mode or WaitMode.POLL
        )

    def wait_recv(self, max_entries: int = 16, mode=None):
        from repro.core.dataplane import WaitMode

        return self.dataplane.wait_cq(
            self.recv_cq, max_entries, mode or WaitMode.POLL
        )


def make_endpoint(
    host: "Host",
    kind: str,
    transport: Transport = Transport.RC,
    core: Optional[Core] = None,
    policies: Optional[PolicyChain] = None,
    buf_bytes: int = DEFAULT_BUF_BYTES,
    tenant: str = "default",
    separate_cqs: bool = True,
) -> Generator["Event", object, Endpoint]:
    """Create one endpoint (unconnected) on ``host``."""
    core = core or host.cpus.pin()
    dataplane = make_dataplane(kind, host, core, policies, tenant)
    device = host.device
    ctx = yield from device.open(core)
    pd = yield from ctx.alloc_pd()
    send_cq = yield from ctx.create_cq()
    recv_cq = (yield from ctx.create_cq()) if separate_cqs else send_cq
    qp = yield from ctx.create_qp(pd, transport, send_cq, recv_cq)
    space = host.new_address_space()
    buf = space.alloc(buf_bytes)
    mr = yield from ctx.reg_mr(pd, buf, AccessFlags.all_remote())
    return Endpoint(host, core, dataplane, ctx, pd, send_cq, recv_cq, qp, buf, mr)


def connect(
    a: Endpoint, b: Endpoint
) -> Generator["Event", object, None]:
    """Bring two RC endpoints to RTS against each other."""
    yield from a.ctx.connect_qp(a.qp, b.addr)
    yield from b.ctx.connect_qp(b.qp, a.addr)


def make_rc_pair(
    host_a: "Host",
    host_b: "Host",
    kind_a: str,
    kind_b: str,
    policies_a: Optional[PolicyChain] = None,
    policies_b: Optional[PolicyChain] = None,
    buf_bytes: int = DEFAULT_BUF_BYTES,
) -> Generator["Event", object, tuple[Endpoint, Endpoint]]:
    """Connected RC endpoint pair (the perftest topology)."""
    a = yield from make_endpoint(host_a, kind_a, Transport.RC, policies=policies_a, buf_bytes=buf_bytes)
    b = yield from make_endpoint(host_b, kind_b, Transport.RC, policies=policies_b, buf_bytes=buf_bytes)
    yield from connect(a, b)
    return a, b


def make_ud_pair(
    host_a: "Host",
    host_b: "Host",
    kind_a: str,
    kind_b: str,
    policies_a: Optional[PolicyChain] = None,
    policies_b: Optional[PolicyChain] = None,
    buf_bytes: int = DEFAULT_BUF_BYTES,
) -> Generator["Event", object, tuple[Endpoint, Endpoint]]:
    """Pair of RTS UD endpoints (datagram tests; address via ``wr.ah``)."""
    a = yield from make_endpoint(host_a, kind_a, Transport.UD, policies=policies_a, buf_bytes=buf_bytes)
    b = yield from make_endpoint(host_b, kind_b, Transport.UD, policies=policies_b, buf_bytes=buf_bytes)
    yield from a.ctx.activate_ud_qp(a.qp)
    yield from b.ctx.activate_ud_qp(b.qp)
    return a, b
