"""CoRD policy framework.

CoRD's reason to exist: once the dataplane crosses the kernel, the OS can
interpose policies on every operation.  The paper constrains them to be
*lightweight and non-blocking* (§3) — a policy may account, permit, or deny
(the application sees an EAGAIN-style rejection and may retry), but it must
never sleep on the dataplane.

A policy returns its extra kernel cost in nanoseconds; a
:class:`~repro.errors.PolicyViolation` denies the operation.  Costs and
verdicts are evaluated inside the CoRD syscall, so denied operations still
pay the user-kernel round trip (as they would in a real implementation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import PolicyViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.verbs.cq import CompletionQueue
    from repro.verbs.qp import QueuePair
    from repro.verbs.wr import RecvWR, SendWR


@dataclass
class OpContext:
    """Everything a policy may inspect about one dataplane operation."""

    now: float
    host: "Host"
    op: str  # "post_send" | "post_recv" | "poll_cq"
    qp: Optional["QueuePair"] = None
    send_wr: Optional["SendWR"] = None
    recv_wr: Optional["RecvWR"] = None
    cq: Optional["CompletionQueue"] = None
    #: Tenant/cgroup label for isolation policies (set by the dataplane).
    tenant: str = "default"


class Policy:
    """Base policy: permit everything, cost nothing, count operations."""

    name = "policy"

    def __init__(self) -> None:
        self.evaluations = 0
        self.denials = 0

    def evaluate(self, ctx: OpContext) -> float:
        """Apply the policy; returns extra kernel ns, raises to deny."""
        self.evaluations += 1
        try:
            return self._evaluate(ctx)
        except PolicyViolation:
            self.denials += 1
            raise

    def _evaluate(self, ctx: OpContext) -> float:
        return 0.0

    def deny(self, reason: str) -> PolicyViolation:
        """Helper for subclasses: build the violation to raise."""
        return PolicyViolation(self.name, reason)


class PolicyChain:
    """Ordered policies evaluated on every CoRD dataplane operation."""

    def __init__(self, policies: Iterable[Policy] = ()):
        self.policies: list[Policy] = list(policies)

    def add(self, policy: Policy) -> "PolicyChain":
        self.policies.append(policy)
        return self

    def evaluate(self, ctx: OpContext) -> float:
        """Total extra kernel cost; raises on the first denial.

        Denial short-circuits: later policies do not run (and do not
        charge), matching an in-kernel early return.
        """
        total = 0.0
        host = ctx.host
        if host is not None and host.sim.telemetry.enabled:
            tele = host.sim.telemetry
            cost_counter = tele.scope(host.name).counter("policy.eval_ns")
            for policy in self.policies:
                cost = policy.evaluate(ctx)
                cost_counter.inc(cost, key=policy.name)
                total += cost
            return total
        for policy in self.policies:
            total += policy.evaluate(ctx)
        return total

    def __len__(self) -> int:
        return len(self.policies)

    def __iter__(self):
        return iter(self.policies)
