"""Isolation: per-tenant operation/byte budgets over sliding epochs.

The cgroup-flavoured resource control the paper points at ([81]): each
tenant gets at most ``max_ops`` operations and ``max_bytes`` payload bytes
per ``epoch_ns`` window; excess operations are denied non-blockingly.
Unlike QoS (a *rate* smoother), this is a hard *budget* — the mechanism an
operator uses to contain a misbehaving container.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import OpContext, Policy
from repro.errors import ConfigError

#: Kernel cost of the budget bookkeeping per operation.
QUOTA_CHECK_NS = 28.0


@dataclass
class _TenantWindow:
    epoch_start: float = 0.0
    ops: int = 0
    bytes: int = 0


class IsolationQuota(Policy):
    """Per-tenant op and byte budgets per epoch."""

    name = "isolation.quota"

    def __init__(
        self,
        epoch_ns: float,
        max_ops: int | None = None,
        max_bytes: int | None = None,
        count_polls: bool = False,
    ):
        super().__init__()
        if epoch_ns <= 0:
            raise ConfigError(f"epoch must be positive: {epoch_ns}")
        if max_ops is None and max_bytes is None:
            raise ConfigError("at least one of max_ops/max_bytes must be set")
        self.epoch_ns = epoch_ns
        self.max_ops = max_ops
        self.max_bytes = max_bytes
        self.count_polls = count_polls
        self._windows: dict[str, _TenantWindow] = {}

    def _window(self, tenant: str, now: float) -> _TenantWindow:
        win = self._windows.get(tenant)
        if win is None:
            win = _TenantWindow(epoch_start=now)
            self._windows[tenant] = win
        elif now - win.epoch_start >= self.epoch_ns:
            win.epoch_start = now - ((now - win.epoch_start) % self.epoch_ns)
            win.ops = 0
            win.bytes = 0
        return win

    def usage(self, tenant: str) -> tuple[int, int]:
        """(ops, bytes) consumed in the tenant's current epoch."""
        win = self._windows.get(tenant)
        return (win.ops, win.bytes) if win else (0, 0)

    def _evaluate(self, ctx: OpContext) -> float:
        if ctx.op == "poll_cq" and not self.count_polls:
            return QUOTA_CHECK_NS
        win = self._window(ctx.tenant, ctx.now)
        size = ctx.send_wr.length if ctx.send_wr is not None else 0
        if self.max_ops is not None and win.ops + 1 > self.max_ops:
            raise self.deny(
                f"tenant {ctx.tenant!r} exceeded {self.max_ops} ops/epoch"
            )
        if self.max_bytes is not None and win.bytes + size > self.max_bytes:
            raise self.deny(
                f"tenant {ctx.tenant!r} exceeded {self.max_bytes} bytes/epoch"
            )
        win.ops += 1
        win.bytes += size
        return QUOTA_CHECK_NS
