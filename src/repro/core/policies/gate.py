"""Suspend/resume gate: OS-level control over *existing* connections.

The paper's abstract names the core loss under kernel bypass: "limiting
the OS control over existing network connections."  With CoRD the kernel
sees every operation, so an operator can *suspend* a tenant's dataplane —
subsequent posts are denied non-blockingly until resume — without the
application's cooperation.  Combined with the NIC draining its in-flight
work, this is the building block for transparent migration (MigrOS [69])
and live policy changes.
"""

from __future__ import annotations

from repro.core.policy import OpContext, Policy

GATE_CHECK_NS = 8.0


class SuspendGate(Policy):
    """Per-tenant dataplane on/off switch."""

    name = "gate.suspend"

    def __init__(self, suspend_polls: bool = False):
        super().__init__()
        #: Suspending polls too would starve completion reaping; default
        #: lets the app drain while suspended (the graceful mode).
        self.suspend_polls = suspend_polls
        self._suspended: set[str] = set()

    def suspend(self, tenant: str) -> None:
        self._suspended.add(tenant)

    def resume(self, tenant: str) -> None:
        self._suspended.discard(tenant)

    def is_suspended(self, tenant: str) -> bool:
        return tenant in self._suspended

    def _evaluate(self, ctx: OpContext) -> float:
        if ctx.tenant in self._suspended:
            if ctx.op == "poll_cq" and not self.suspend_polls:
                return GATE_CHECK_NS
            raise self.deny(f"tenant {ctx.tenant!r} is suspended")
        return GATE_CHECK_NS
