"""Security: per-operation access-control rules.

With kernel bypass, the OS cannot stop an application from issuing, say,
RDMA reads against a leaked rkey (the ReDMArk attack family the paper
cites); with CoRD every operation is inspectable.  ``SecurityAcl`` applies
an ordered first-match rule list over (tenant, opcode, destination,
message size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.policy import OpContext, Policy
from repro.verbs.wr import Opcode

#: Kernel cost per rule evaluated.
RULE_CHECK_NS = 12.0


@dataclass(frozen=True)
class AclRule:
    """First-match rule; ``None`` fields are wildcards."""

    action: str  # "allow" | "deny"
    tenant: Optional[str] = None
    opcode: Optional[Opcode] = None
    dst_host: Optional[int] = None
    max_bytes: Optional[int] = None  # rule matches when length > max_bytes

    def matches(self, ctx: OpContext) -> bool:
        wr = ctx.send_wr
        if self.tenant is not None and ctx.tenant != self.tenant:
            return False
        if self.opcode is not None and (wr is None or wr.opcode is not self.opcode):
            return False
        if self.dst_host is not None:
            if ctx.qp is None:
                return False
            dest = ctx.qp.remote if wr is None or wr.ah is None else wr.ah
            if dest is None or dest[0] != self.dst_host:
                return False
        if self.max_bytes is not None and (wr is None or wr.length <= self.max_bytes):
            return False
        return True


class SecurityAcl(Policy):
    """Ordered first-match ACL over send-side dataplane operations."""

    name = "security.acl"

    def __init__(self, rules: list[AclRule], default_allow: bool = True):
        super().__init__()
        if not all(r.action in ("allow", "deny") for r in rules):
            raise ValueError("rule actions must be 'allow' or 'deny'")
        self.rules = list(rules)
        self.default_allow = default_allow

    def _evaluate(self, ctx: OpContext) -> float:
        if ctx.op != "post_send":
            return RULE_CHECK_NS  # recv/poll: constant sanity check
        cost = 0.0
        for rule in self.rules:
            cost += RULE_CHECK_NS
            if rule.matches(ctx):
                if rule.action == "deny":
                    raise self.deny(f"rule {rule} matched")
                return cost
        if not self.default_allow:
            raise self.deny("no rule matched and default is deny")
        return cost
