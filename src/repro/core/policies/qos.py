"""QoS: token-bucket rate limiting of send bandwidth.

A per-tenant token bucket refilled at ``rate_bytes_per_s`` with capacity
``burst_bytes``.  A ``post_send`` whose payload exceeds the available
tokens is denied (EAGAIN-style, non-blocking — the paper's constraint);
the application retries.  This is the software analogue of what Justitia
and FreeFlow do with dedicated cores or NIC offload.
"""

from __future__ import annotations

from repro.core.policy import OpContext, Policy
from repro.errors import ConfigError

#: Kernel cost of the token-bucket check per operation.
QOS_CHECK_NS = 35.0


class TokenBucketQos(Policy):
    """Rate-limit sends per tenant."""

    name = "qos.token_bucket"

    def __init__(self, rate_bytes_per_s: float, burst_bytes: int):
        super().__init__()
        if rate_bytes_per_s <= 0:
            raise ConfigError(f"rate must be positive: {rate_bytes_per_s}")
        if burst_bytes <= 0:
            raise ConfigError(f"burst must be positive: {burst_bytes}")
        self.rate_per_ns = rate_bytes_per_s / 1e9
        self.burst_bytes = float(burst_bytes)
        self._buckets: dict[str, tuple[float, float]] = {}  # tenant -> (tokens, t)
        self.bytes_admitted = 0
        self.bytes_denied = 0

    def _refill(self, tenant: str, now: float) -> float:
        tokens, last = self._buckets.get(tenant, (self.burst_bytes, now))
        tokens = min(self.burst_bytes, tokens + (now - last) * self.rate_per_ns)
        self._buckets[tenant] = (tokens, now)
        return tokens

    def tokens(self, tenant: str, now: float) -> float:
        """Current token level (refilled to ``now``)."""
        return self._refill(tenant, now)

    def _evaluate(self, ctx: OpContext) -> float:
        if ctx.op != "post_send" or ctx.send_wr is None:
            return QOS_CHECK_NS
        size = ctx.send_wr.length
        tokens = self._refill(ctx.tenant, ctx.now)
        if size > tokens:
            self.bytes_denied += size
            raise self.deny(
                f"tenant {ctx.tenant!r}: {size} B exceeds {tokens:.0f} available tokens"
            )
        self._buckets[ctx.tenant] = (tokens - size, ctx.now)
        self.bytes_admitted += size
        return QOS_CHECK_NS
