"""Shipped CoRD policies: QoS, security, isolation, observability.

These are the concrete payoffs of putting the kernel back on the dataplane
(paper §1/§3): each is a lightweight, non-blocking check the OS can apply
per operation because — unlike with kernel bypass — it *sees* every
operation.
"""

from repro.core.policies.qos import TokenBucketQos
from repro.core.policies.security import SecurityAcl, AclRule
from repro.core.policies.isolation import IsolationQuota
from repro.core.policies.observability import FlowStats
from repro.core.policies.gate import SuspendGate

__all__ = [
    "TokenBucketQos",
    "SecurityAcl",
    "AclRule",
    "IsolationQuota",
    "FlowStats",
    "SuspendGate",
]
