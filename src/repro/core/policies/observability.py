"""Observability: per-flow statistics export.

The eBPF-style monitoring use case ([3] in the paper): with the dataplane
in the kernel, the OS can account every RDMA operation per QP/tenant —
operation mix, byte counts, a log2 message-size histogram and op rates —
without application cooperation.  Never denies anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.policy import OpContext, Policy

#: Kernel cost of the accounting per operation.
ACCOUNT_NS = 22.0


@dataclass
class FlowRecord:
    """Accumulated statistics for one (tenant, qpn) flow."""

    tenant: str
    qpn: int
    ops: dict[str, int] = field(default_factory=dict)
    bytes_sent: int = 0
    first_ns: float = 0.0
    last_ns: float = 0.0
    #: log2 message-size histogram: bucket i counts sizes in [2^i, 2^(i+1)).
    size_hist: dict[int, int] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        """Observed lifetime: first to last accounted operation (0 for a
        single-op flow — the same degenerate case the rates guard)."""
        return self.last_ns - self.first_ns

    def message_rate_per_s(self) -> float:
        span = self.duration_ns
        sends = self.ops.get("post_send", 0)
        if span <= 0 or sends < 2:
            return 0.0
        return (sends - 1) / span * 1e9

    def byte_rate_per_s(self) -> float:
        """Send goodput over the flow's lifetime (same guards as the
        message rate: a single-op or zero-duration flow has no rate)."""
        span = self.duration_ns
        sends = self.ops.get("post_send", 0)
        if span <= 0 or sends < 2:
            return 0.0
        return self.bytes_sent / span * 1e9


class FlowStats(Policy):
    """Account every dataplane operation per flow."""

    name = "observability.flow_stats"

    def __init__(self, histogram: bool = True):
        super().__init__()
        self.histogram = histogram
        self.flows: dict[tuple[str, int], FlowRecord] = {}

    def _evaluate(self, ctx: OpContext) -> float:
        qpn = ctx.qp.qpn if ctx.qp is not None else -1
        key = (ctx.tenant, qpn)
        rec = self.flows.get(key)
        if rec is None:
            rec = FlowRecord(tenant=ctx.tenant, qpn=qpn, first_ns=ctx.now)
            self.flows[key] = rec
        rec.ops[ctx.op] = rec.ops.get(ctx.op, 0) + 1
        rec.last_ns = ctx.now
        if ctx.send_wr is not None:
            size = ctx.send_wr.length
            rec.bytes_sent += size
            if self.histogram:
                bucket = max(0, size.bit_length() - 1)
                rec.size_hist[bucket] = rec.size_hist.get(bucket, 0) + 1
        return ACCOUNT_NS

    def report(self) -> list[dict[str, object]]:
        """Exportable snapshot, sorted by bytes sent (descending)."""
        out = []
        for rec in sorted(self.flows.values(), key=lambda r: -r.bytes_sent):
            out.append(
                {
                    "tenant": rec.tenant,
                    "qpn": rec.qpn,
                    "ops": dict(rec.ops),
                    "bytes_sent": rec.bytes_sent,
                    "duration_ns": rec.duration_ns,
                    "msg_rate_per_s": rec.message_rate_per_s(),
                    "byte_rate_per_s": rec.byte_rate_per_s(),
                    "size_hist": dict(rec.size_hist),
                }
            )
        return out
