"""The dataplanes: kernel bypass vs CoRD.

Both implement the same three-operation interface (the ibverbs data plane,
§4): ``post_send``, ``post_recv``, ``poll_cq``, plus ``wait_cq`` — a
completion *waiter* that models either busy-polling or interrupt-driven
blocking without simulating every spin of a poll loop.

Costs:

========== ============================================= =========================
operation  BypassDataplane                                CordDataplane
========== ============================================= =========================
post_send  driver + doorbell (user space)                 syscall + serialize +
                                                          policies + driver +
                                                          doorbell (kernel)
post_recv  driver (user space)                            syscall + serialize +
                                                          policies + driver
poll_cq    ibv_poll_cq (user space)                       syscall + serialize +
                                                          poll (kernel)
========== ============================================= =========================

The NIC behaviour after the doorbell is identical in both — by construction,
as in the paper.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Generator, Optional

from repro.core import driver
from repro.core.policy import OpContext, PolicyChain
from repro.errors import PolicyViolation
from repro.hw.cpu import Core
from repro.verbs.cq import CompletionQueue
from repro.verbs.qp import QueuePair
from repro.verbs.wr import CQE, RecvWR, SendWR

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.kernel.interrupts import CompletionChannel
    from repro.sim.events import Event


class WaitMode(enum.Enum):
    """How an application waits for completions."""

    POLL = "poll"  # spin on the CQ (default high-performance mode)
    EVENT = "event"  # arm + block on a completion channel (interrupt path)


class Dataplane:
    """Common state and the shared waiter logic."""

    #: Human-readable mode tag ("BP" or "CD"), mirroring the paper's figures.
    tag = "??"

    def __init__(self, host: "Host", core: Core, tenant: str = "default"):
        self.host = host
        self.core = core
        self.sim = host.sim
        self.system = host.system
        self.tenant = tenant
        self.ops_posted = 0
        self.polls = 0
        self._channels: dict[int, "CompletionChannel"] = {}

    # -- telemetry helpers (all callers guard on trace/telemetry .enabled) --------

    def _begin_span(self, op: str, qpn: int, wr_id: int, size: int) -> int:
        """Allocate a span id and emit its ``op_begin`` record."""
        trace = self.sim.trace
        # sim: allow-unguarded-hook(helper is only called under the caller's trace.enabled guard)
        span = trace.new_span()
        # sim: allow-unguarded-hook(helper is only called under the caller's trace.enabled guard)
        trace.emit(self.sim.now, "span", "op_begin", span=span,
                   host=self.host.host_id, op=op, dataplane=self.tag,
                   qpn=qpn, wr_id=wr_id, size=size)
        return span

    def _end_span(self, span: int) -> None:
        # sim: allow-unguarded-hook(helper is only called under the caller's trace.enabled guard)
        self.sim.trace.emit(self.sim.now, "span", "op_end", span=span,
                            host=self.host.host_id)

    def _finish_spans(self, cqes: list[CQE]) -> None:
        """The application just observed these completions: close their spans."""
        trace = self.sim.trace
        now = self.sim.now
        host = self.host.host_id
        for cqe in cqes:
            if cqe.span is not None:
                # sim: allow-unguarded-hook(helper is only called under the caller's trace.enabled guard)
                trace.emit(now, "span", "op_end", span=cqe.span, host=host)

    def _count_op(self, op: str, n: int = 1, size: float = 0.0) -> None:
        # sim: allow-unguarded-hook(helper is only called under the caller's telemetry.enabled guard)
        counter = self.sim.telemetry.scope(self.host.name).counter("dataplane.ops")
        for _ in range(n):
            counter.inc(size, key=f"{self.tag}.{op}")

    # -- interface ---------------------------------------------------------------

    def post_send(self, qp: QueuePair, wr: SendWR) -> Generator["Event", object, None]:
        raise NotImplementedError

    def post_recv(self, qp: QueuePair, wr: RecvWR) -> Generator["Event", object, None]:
        raise NotImplementedError

    def post_recv_many(
        self, qp: QueuePair, wrs: list[RecvWR]
    ) -> Generator["Event", object, None]:
        """Post a chain of recv WRs in one call (``ibv_post_recv`` takes a
        linked list) — in CoRD this is one syscall for the whole chain,
        which is how real consumers amortize the kernel crossing."""
        raise NotImplementedError

    def post_send_many(
        self, qp: QueuePair, wrs: list[SendWR]
    ) -> Generator["Event", object, None]:
        """Post a chain of send WRs in one call (``ibv_post_send`` takes a
        linked list; perftest's postlist mode).  For CoRD this is the
        paper-§6 "the problem is the API, not the transition" argument
        made concrete: one syscall amortized over the whole chain."""
        raise NotImplementedError

    def post_srq_recv_many(self, srq, wrs: list[RecvWR]) -> Generator["Event", object, None]:
        """Post a chain of recv WRs to a shared receive queue."""
        raise NotImplementedError

    def poll_cq(
        self, cq: CompletionQueue, max_entries: int = 16
    ) -> Generator["Event", object, list[CQE]]:
        raise NotImplementedError

    # -- completion waiting ----------------------------------------------------------

    def wait_cq(
        self,
        cq: CompletionQueue,
        max_entries: int = 16,
        mode: WaitMode = WaitMode.POLL,
    ) -> Generator["Event", object, list[CQE]]:
        """Block (by polling or by interrupt) until >= 1 CQE, then reap.

        The polling path is modelled, not spun: the core is held busy for
        the waiting interval (so DVFS sees a saturated core), then one
        missed poll and one successful poll are charged.  This keeps event
        counts O(1) per completion while preserving CPU accounting.
        """
        if mode is WaitMode.EVENT:
            return (yield from self._wait_event(cq, max_entries))
        ready = cq.wait_nonempty()
        if not ready.processed:
            # busy_poll measures the spin itself (via a shift-aware start
            # mark), so the duration excludes any fast-forwarded jump.
            waited = yield from self.core.busy_poll(ready, 0.0)
            self._waited(waited)
        # One unsuccessful probe (the loop iteration that raced the CQE)
        # plus the successful reap.
        yield from self._charge_poll(hit=False)
        cqes = yield from self.poll_cq(cq, max_entries)
        return cqes

    def wait_cq_any(
        self,
        cqs: list[CompletionQueue],
        max_entries: int = 16,
    ) -> Generator["Event", object, list[CQE]]:
        """Poll-wait on several CQs at once; reap from whichever is ready.

        The multiplexed analogue of :meth:`wait_cq` (POLL mode) for servers
        draining many QPs.  Built on ``Simulator.wait_any`` — one shared
        waiter callback instead of an ``AnyOf`` condition object per loop
        iteration, so a steady-state poll loop allocates nothing per wake.
        Reaps up to ``max_entries`` CQEs total, scanning ready CQs in the
        order given.
        """
        ready = [cq for cq in cqs if cq.entries]
        if not ready:
            first = self.sim.wait_any([cq.wait_nonempty() for cq in cqs])
            waited = yield from self.core.busy_poll(first, 0.0)
            self._waited(waited)
            ready = [cq for cq in cqs if cq.entries]
        yield from self._charge_poll(hit=False)
        out: list[CQE] = []
        for cq in ready:
            if len(out) >= max_entries:
                break
            out.extend((yield from self.poll_cq(cq, max_entries - len(out))))
        return out

    #: CPU cost of ibv_req_notify_cq + ibv_ack_cq_events bookkeeping.
    REARM_NS = 110.0

    def _wait_event(
        self, cq: CompletionQueue, max_entries: int
    ) -> Generator["Event", object, list[CQE]]:
        """Interrupt-driven completion (the §2 "no polling" configuration).

        Every batch of completions is learned through the completion
        channel's file descriptor — a ``get_cq_event`` system call — after
        the NIC's interrupt fired and its handler ran (stealing the app
        core).  This is the large, size-independent constant fig. 1a shows.
        """
        chan = self._channels.get(id(cq))
        if chan is None:
            chan = self.host.kernel.create_comp_channel()
            self.host.kernel.bind_cq_to_channel(cq, chan)
            self._channels[id(cq)] = chan
        woke = False
        while True:
            # Canonical perftest event loop: ack previous events, re-arm,
            # then drain (the order that avoids losing the arm/poll race).
            yield from self.core.run(self.REARM_NS)
            cq.req_notify()
            cqes = yield from self.poll_cq(cq, max_entries)
            if cqes:
                cq.armed = False
                if not woke:
                    # This batch was announced by a completion event: its
                    # interrupt ran on this core and the event fd was read
                    # with one syscall.  (The blocking path below already
                    # paid both through the kernel IRQ path + chan.wait.)
                    yield from self.core.run(self.system.cpu.irq_handler_ns)
                    yield from self.core.syscall(self.system.cpu.block_ns)
                return cqes
            yield from chan.wait(self.core)
            woke = True

    def _charge_poll(self, hit: bool) -> Generator["Event", object, None]:
        raise NotImplementedError

    def _waited(self, duration_ns: float) -> None:
        """Hook: the dataplane spun for ``duration_ns`` awaiting a CQE.

        ``duration_ns`` is the spin proper — measured by ``busy_poll``
        from the moment the core was *acquired* (via a shift-aware mark,
        so fast-forward jumps never inflate it).  Time queued behind
        another thread on a shared core is deliberately excluded: while
        descheduled the process issues no poll syscalls, so counting that
        interval would overstate the DVFS idle credit below.

        Bypass spins in a tight user-space loop (full duty).  CoRD spins
        through repeated poll *syscalls*; the entry/exit stalls lower the
        core's effective power draw, which the DVFS governor rewards — the
        paper's observed "system calls interact with DVFS" effect (§5).
        """


class BypassDataplane(Dataplane):
    """Classical user-level RDMA dataplane (fig. 2b)."""

    tag = "BP"

    def post_send(self, qp: QueuePair, wr: SendWR) -> Generator["Event", object, None]:
        if self.sim.trace.enabled:
            wr.span = self._begin_span("post_send", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_send", size=wr.length)
        wr.inline = driver.should_inline(self.system, qp, wr, cord=False)
        cpu = driver.post_send_cpu_ns(self.system, wr, wr.inline)
        cpu += driver.doorbell_cpu_ns(self.system)
        yield from self.core.run(cpu)
        self.host.nic.hw_post_send(qp, wr)
        self.ops_posted += 1

    def post_recv(self, qp: QueuePair, wr: RecvWR) -> Generator["Event", object, None]:
        span = None
        if self.sim.trace.enabled:
            span = self._begin_span("post_recv", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_recv", size=wr.length)
        yield from self.core.run(driver.post_recv_cpu_ns(self.system))
        self.host.nic.hw_post_recv(qp, wr)
        self.ops_posted += 1
        if span is not None:
            self._end_span(span)

    def post_recv_many(
        self, qp: QueuePair, wrs: list[RecvWR]
    ) -> Generator["Event", object, None]:
        if not wrs:
            return
        yield from self.core.run(driver.post_recv_cpu_ns(self.system) * len(wrs))
        for wr in wrs:
            self.host.nic.hw_post_recv(qp, wr)
        self.ops_posted += len(wrs)

    def post_srq_recv_many(self, srq, wrs: list[RecvWR]) -> Generator["Event", object, None]:
        if not wrs:
            return
        yield from self.core.run(driver.post_recv_cpu_ns(self.system) * len(wrs))
        for wr in wrs:
            self.host.nic.hw_post_srq_recv(srq, wr)
        self.ops_posted += len(wrs)

    def post_send_many(
        self, qp: QueuePair, wrs: list[SendWR]
    ) -> Generator["Event", object, None]:
        if not wrs:
            return
        if self.sim.trace.enabled:
            for wr in wrs:
                wr.span = self._begin_span("post_send", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_send", n=len(wrs))
        cpu = 0.0
        for wr in wrs:
            wr.inline = driver.should_inline(self.system, qp, wr, cord=False)
            cpu += driver.post_send_cpu_ns(self.system, wr, wr.inline)
        cpu += driver.doorbell_cpu_ns(self.system)  # one doorbell per chain
        yield from self.core.run(cpu)
        for wr in wrs:
            self.host.nic.hw_post_send(qp, wr)
        self.ops_posted += len(wrs)

    def poll_cq(
        self, cq: CompletionQueue, max_entries: int = 16
    ) -> Generator["Event", object, list[CQE]]:
        cqes = cq.poll(max_entries)
        cost = (
            self.system.cpu.poll_hit_ns if cqes else self.system.cpu.poll_miss_ns
        )
        yield from self.core.run(cost)
        self.polls += 1
        if self.sim.trace.enabled and cqes:
            self._finish_spans(cqes)
        return cqes

    def _charge_poll(self, hit: bool) -> Generator["Event", object, None]:
        cost = self.system.cpu.poll_hit_ns if hit else self.system.cpu.poll_miss_ns
        yield from self.core.run(cost)


class CordDataplane(Dataplane):
    """CoRD: every dataplane operation crosses the kernel (fig. 2c)."""

    tag = "CD"

    def __init__(
        self,
        host: "Host",
        core: Core,
        policies: Optional[PolicyChain] = None,
        tenant: str = "default",
    ):
        super().__init__(host, core, tenant=tenant)
        self.policies = policies if policies is not None else PolicyChain()
        self.denied_ops = 0

    # -- helpers -----------------------------------------------------------------

    def _interpose(
        self, ctx: OpContext, fast_path_ns: float
    ) -> Generator["Event", object, bool]:
        """One CoRD syscall: transition + serialize + policies + fast path.

        Returns False (after charging the full round trip) when a policy
        denied the operation — the syscall still happened.
        """
        serialize = self.system.cord_serialize_ns
        kernel_entry = self.system.cord_kernel_driver_ns
        try:
            policy_ns = self.policies.evaluate(ctx)
        except PolicyViolation:
            self.denied_ops += 1
            # Denied: pay transition + serialization + the policy walk up to
            # the denial; the driver fast path never runs.
            yield from self.core.syscall(serialize + kernel_entry)
            raise
        yield from self.core.syscall(serialize + kernel_entry + policy_ns + fast_path_ns)
        return True

    # -- interface ----------------------------------------------------------------

    def post_send(self, qp: QueuePair, wr: SendWR) -> Generator["Event", object, None]:
        if self.sim.trace.enabled:
            wr.span = self._begin_span("post_send", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_send", size=wr.length)
        wr.inline = driver.should_inline(self.system, qp, wr, cord=True)
        fast = driver.post_send_cpu_ns(self.system, wr, wr.inline)
        fast += driver.doorbell_cpu_ns(self.system)
        ctx = OpContext(
            now=self.sim.now, host=self.host, op="post_send",
            qp=qp, send_wr=wr, tenant=self.tenant,
        )
        yield from self._interpose(ctx, fast)
        self.host.nic.hw_post_send(qp, wr)
        self.ops_posted += 1

    def post_recv(self, qp: QueuePair, wr: RecvWR) -> Generator["Event", object, None]:
        span = None
        if self.sim.trace.enabled:
            span = self._begin_span("post_recv", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_recv", size=wr.length)
        ctx = OpContext(
            now=self.sim.now, host=self.host, op="post_recv",
            qp=qp, recv_wr=wr, tenant=self.tenant,
        )
        yield from self._interpose(ctx, driver.post_recv_cpu_ns(self.system))
        self.host.nic.hw_post_recv(qp, wr)
        self.ops_posted += 1
        if span is not None:
            self._end_span(span)

    def post_recv_many(
        self, qp: QueuePair, wrs: list[RecvWR]
    ) -> Generator["Event", object, None]:
        if not wrs:
            return
        # One syscall carries the whole chain; the policy chain still sees
        # each WR (it must — that is the control CoRD promises).
        policy_ns = 0.0
        for wr in wrs:
            ctx = OpContext(
                now=self.sim.now, host=self.host, op="post_recv",
                qp=qp, recv_wr=wr, tenant=self.tenant,
            )
            try:
                policy_ns += self.policies.evaluate(ctx)
            except PolicyViolation:
                self.denied_ops += 1
                yield from self.core.syscall(
                    self.system.cord_serialize_ns + self.system.cord_kernel_driver_ns
                )
                raise
        fast = driver.post_recv_cpu_ns(self.system) * len(wrs)
        yield from self.core.syscall(
            self.system.cord_serialize_ns
            + self.system.cord_kernel_driver_ns
            + policy_ns
            + fast
        )
        for wr in wrs:
            self.host.nic.hw_post_recv(qp, wr)
        self.ops_posted += len(wrs)

    def post_srq_recv_many(self, srq, wrs: list[RecvWR]) -> Generator["Event", object, None]:
        if not wrs:
            return
        policy_ns = 0.0
        for wr in wrs:
            ctx = OpContext(
                now=self.sim.now, host=self.host, op="post_recv",
                recv_wr=wr, tenant=self.tenant,
            )
            policy_ns += self.policies.evaluate(ctx)
        fast = driver.post_recv_cpu_ns(self.system) * len(wrs)
        yield from self.core.syscall(
            self.system.cord_serialize_ns + self.system.cord_kernel_driver_ns
            + policy_ns + fast
        )
        for wr in wrs:
            self.host.nic.hw_post_srq_recv(srq, wr)
        self.ops_posted += len(wrs)

    def post_send_many(
        self, qp: QueuePair, wrs: list[SendWR]
    ) -> Generator["Event", object, None]:
        if not wrs:
            return
        if self.sim.trace.enabled:
            for wr in wrs:
                wr.span = self._begin_span("post_send", qp.qpn, wr.wr_id, wr.length)
        if self.sim.telemetry.enabled:
            self._count_op("post_send", n=len(wrs))
        # One syscall + one serialization carries the chain; the policy
        # chain still inspects every WR, and the per-WR driver fast path
        # still runs (in the kernel).
        policy_ns = 0.0
        fast = driver.doorbell_cpu_ns(self.system)
        for wr in wrs:
            wr.inline = driver.should_inline(self.system, qp, wr, cord=True)
            fast += driver.post_send_cpu_ns(self.system, wr, wr.inline)
            ctx = OpContext(
                now=self.sim.now, host=self.host, op="post_send",
                qp=qp, send_wr=wr, tenant=self.tenant,
            )
            try:
                policy_ns += self.policies.evaluate(ctx)
            except PolicyViolation:
                self.denied_ops += 1
                yield from self.core.syscall(
                    self.system.cord_serialize_ns + self.system.cord_kernel_driver_ns
                )
                raise
        yield from self.core.syscall(
            self.system.cord_serialize_ns
            + self.system.cord_kernel_driver_ns
            + policy_ns
            + fast
        )
        for wr in wrs:
            self.host.nic.hw_post_send(qp, wr)
        self.ops_posted += len(wrs)

    def poll_cq(
        self, cq: CompletionQueue, max_entries: int = 16
    ) -> Generator["Event", object, list[CQE]]:
        ctx = OpContext(
            now=self.sim.now, host=self.host, op="poll_cq", cq=cq, tenant=self.tenant
        )
        cqes = cq.poll(max_entries)
        base = self.system.cpu.poll_hit_ns if cqes else self.system.cpu.poll_miss_ns
        yield from self._interpose(ctx, base)
        self.polls += 1
        if self.sim.trace.enabled and cqes:
            self._finish_spans(cqes)
        return cqes

    def _charge_poll(self, hit: bool) -> Generator["Event", object, None]:
        base = self.system.cpu.poll_hit_ns if hit else self.system.cpu.poll_miss_ns
        yield from self.core.syscall(
            self.system.cord_serialize_ns + self.system.cord_kernel_driver_ns + base
        )
        self.polls += 1

    #: Share of a CoRD poll-wait the DVFS governor credits as idle
    #: (kernel entry/exit pipeline stalls during the syscall spin loop).
    WAIT_IDLE_CREDIT = 0.3

    def _waited(self, duration_ns: float) -> None:
        self.core.grant_idle_credit(duration_ns * self.WAIT_IDLE_CREDIT)
