"""AST determinism linter: the SIM001–SIM006 and PROTO001–PROTO004 rulepacks.

Walks ``src/``, ``benchmarks/`` and ``tests/`` and reports constructs that
can break the repo's determinism contract (see DESIGN.md "Determinism
contract & sanitizers"):

- **SIM001** — global RNG (``random.*``, ``np.random.*``, unseeded
  ``default_rng()``) anywhere outside ``repro/sim/rng.py``.  All randomness
  must flow through named, seeded ``repro.sim.rng`` streams.
- **SIM002** — wall-clock reads (``time.time/monotonic/perf_counter``,
  ``datetime.now``) inside ``src/repro``.  Simulated components must only
  ever see ``sim.now``.
- **SIM003** — iteration over ``set``s (and ``.pop()`` on them): the order
  is hash-seed dependent, so anything it feeds (scheduling, stream naming,
  completion order) is too.  ``sorted(...)`` first.
- **SIM004** — float ``==``/``!=`` where a side looks like simulated time
  (``now``/``_now``/``*deadline*``): exact comparison of accumulated floats
  is fragile; compare ordering or use an explicit same-instant pragma.
- **SIM005** — a telemetry/trace/fault hook call site inside ``src/repro``
  not dominated by its one enabled-guard branch (``if x.enabled:`` /
  ``if faults is not None:``).  The hooks-off hot path must cost exactly
  one branch per site.
- **SIM006** — a class in ``repro/sim`` holding per-event state without
  ``__slots__``.

The PROTO0xx rules are *protocol-aware*: they guard the RC transport
contract the runtime monitors (:mod:`repro.verify.monitors`) check
dynamically, at the places where the static shape is already wrong:

- **PROTO001** — a QP ``state``/``_state`` assignment outside
  ``QueuePair.__init__``/``modify()``.  Direct writes skip the legality
  check and the ERROR/RESET flush, the exact bug class PROTO103 catches
  at runtime.
- **PROTO002** — raw ``+``/``-`` arithmetic or ``<``/``>`` ordering on a
  PSN-typed expression (``psn``/``sq_psn``/``expected_psn``) outside the
  :class:`repro.verbs.wr.Psn` helper.  PSNs live in a 24-bit circular
  space; raw integer math silently diverges at the wrap point.
- **PROTO003** — a function that consumes an in-flight WR (pops from
  ``outstanding`` or decrements ``sq_outstanding``) but contains no
  completion-posting machinery (``_post_cqe``/``push``/``spawn``): a
  completion path that can retire work without ever emitting a CQE.
- **PROTO004** — a protocol-monitor hook call (``mon.on_*``,
  ``register_qp``) not dominated by its ``is None`` guard; monitors-off
  runs must cost exactly one branch per site.

Suppression is per-line via ``# sim: allow-<rule>(reason)`` pragmas; a
pragma with no reason, an unknown pragma and a pragma that suppresses
nothing are themselves findings (SIM000), so the allowlist stays reviewed
and honest.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, Optional, Sequence

from repro.sanitize.findings import PRAGMAS, Finding

#: Default lint roots, relative to the repo root.
DEFAULT_ROOTS = ("src", "benchmarks", "tests", "tools")

#: Path fragments never linted (negative-test fixture modules seed
#: deliberate violations).
DEFAULT_EXCLUDES = ("fixtures", ".git", "__pycache__", "egg-info")

#: The one module allowed to touch numpy's RNG constructors.
_RNG_MODULE = os.path.join("repro", "sim", "rng.py")

#: Modules that *implement* tracing/telemetry/faults: their internals are
#: the guard, so SIM005 does not apply to them.
_HOOK_IMPL_FRAGMENTS = (
    os.path.join("repro", "sim", "trace.py"),
    os.path.join("repro", "telemetry", ""),
    os.path.join("repro", "faults.py"),
    os.path.join("repro", "sanitize", ""),
    os.path.join("repro", "verify", ""),
)

#: The one module allowed raw PSN arithmetic (it implements the helper).
_PSN_MODULE = os.path.join("repro", "verbs", "wr.py")

#: Attribute / name spellings treated as PSN-typed for PROTO002.
_PSN_FIELDS = frozenset({"psn", "sq_psn", "expected_psn"})

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.today", "datetime.datetime.today",
})

#: Names that mark an expression as simulated time for SIM004.
_TIME_NAMES = frozenset({"now", "_now"})
_TIME_SUFFIXES = ("deadline",)

_PRAGMA_RE = re.compile(r"#\s*sim:\s*([a-zA-Z][a-zA-Z0-9_-]*)\(([^)]*)\)")


def _dotted(node: ast.AST) -> list[str]:
    """Flatten an attribute/call chain into its name parts, bottom-up.

    ``self.sim.telemetry.scope("h").counter("x").inc()`` yields
    ``["self", "sim", "telemetry", "scope", "counter", "inc"]``.
    """
    parts: list[str] = []

    def walk(n: ast.AST) -> None:
        if isinstance(n, ast.Attribute):
            walk(n.value)
            parts.append(n.attr)
        elif isinstance(n, ast.Call):
            walk(n.func)
        elif isinstance(n, ast.Name):
            parts.append(n.id)

    walk(node)
    return parts


def _names_in(node: ast.AST) -> Iterable[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


class _Pragma:
    __slots__ = ("line", "name", "reason", "rule", "used")

    def __init__(self, line: int, name: str, reason: str):
        self.line = line
        self.name = name
        self.reason = reason.strip()
        self.rule = PRAGMAS.get(name)
        self.used = False


def _parse_pragmas(source: str) -> list[_Pragma]:
    """Extract ``# sim: allow-*(reason)`` pragmas from real comment tokens.

    Tokenizing (rather than regexing raw lines) keeps pragma-shaped text
    inside string literals — e.g. the linter's own tests — inert.
    """
    import io
    import tokenize

    pragmas = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            m = _PRAGMA_RE.search(tok.string)
            if m:
                pragmas.append(_Pragma(tok.start[0], m.group(1), m.group(2)))
    return pragmas


class _Scope:
    """Per-function (or module) info: which local names are set-typed."""

    __slots__ = ("set_names",)

    def __init__(self) -> None:
        self.set_names: set[str] = set()


def _is_set_expr(node: ast.AST, scope: _Scope) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name) and node.id in scope.set_names:
        return True
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, norm_path: str):
        self.path = path
        #: Normalized (os.sep) path used for scope decisions.
        self.norm = norm_path
        self.findings: list[Finding] = []
        self._scopes: list[_Scope] = [_Scope()]
        self._enabled_depth = 0  # `if x.enabled:` Ifs currently dominating
        self._notnone_depth = 0  # `if faults is not None:` Ifs dominating
        self._hook_lines: set[int] = set()  # SIM005/PROTO004 dedupe
        self._class_stack: list[ast.ClassDef] = []
        self._func_stack: list[str] = []

        self.in_src = f"{os.sep}repro{os.sep}" in norm_path or \
            norm_path.startswith(f"repro{os.sep}")
        self.is_rng_module = norm_path.endswith(_RNG_MODULE)
        self.is_psn_module = norm_path.endswith(_PSN_MODULE)
        self.in_sim = f"{os.sep}repro{os.sep}sim{os.sep}" in norm_path
        self.hook_impl = any(
            frag and frag in norm_path for frag in _HOOK_IMPL_FRAGMENTS
        )

    # -- helpers ---------------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str, hint: str = "") -> None:
        self.findings.append(Finding(
            rule=rule, path=self.path, line=getattr(node, "lineno", 0),
            message=message, hint=hint,
        ))

    # -- scope bookkeeping ------------------------------------------------------

    def _collect_set_names(self, node: ast.AST, scope: _Scope) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and _is_set_expr(sub.value, scope):
                scope.set_names.add(sub.targets[0].id)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                ann = ast.unparse(sub.annotation) if sub.annotation else ""
                if ann.startswith(("set[", "set", "frozenset")) and "Optional" not in ann:
                    scope.set_names.add(sub.target.id)

    def visit_Module(self, node: ast.Module) -> None:
        self._collect_set_names(node, self._scopes[0])
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        scope = _Scope()
        self._collect_set_names(node, scope)
        self._scopes.append(scope)
        self._func_stack.append(node.name)
        if self.in_src:
            self._check_no_cqe_path(node)
        self.generic_visit(node)
        self._func_stack.pop()
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- PROTO003: completion path with no CQE-posting machinery -----------------

    def _check_no_cqe_path(self, node) -> None:
        consumes: Optional[ast.AST] = None
        posts = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                parts = _dotted(sub.func)
                if parts[-2:] == ["outstanding", "pop"]:
                    consumes = consumes or sub
                if "_post_cqe" in parts or (
                    parts and parts[-1] in ("push", "spawn")
                ):
                    posts = True
            elif isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Sub) \
                    and isinstance(sub.target, ast.Attribute) \
                    and sub.target.attr == "sq_outstanding":
                consumes = consumes or sub
        if consumes is not None and not posts:
            self.report(
                "PROTO003", consumes,
                f"`{node.name}` retires in-flight work (outstanding.pop / "
                "sq_outstanding -= 1) but never posts a CQE",
                "every consumed WR must complete: call _post_cqe (or spawn "
                "the generator that does)",
            )

    # -- PROTO001 / PROTO002: QP state writes and raw PSN math -------------------

    @staticmethod
    def _is_psn_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in _PSN_FIELDS
        if isinstance(node, ast.Attribute):
            return node.attr in _PSN_FIELDS
        return False

    def _in_qp_modify(self) -> bool:
        return bool(
            self._class_stack
            and self._class_stack[-1].name == "QueuePair"
            and self._func_stack
            and self._func_stack[-1] in ("__init__", "modify")
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute) \
                    and target.attr in ("state", "_state") \
                    and "QPState" in set(_names_in(node.value)) \
                    and not self._in_qp_modify():
                self.report(
                    "PROTO001", node,
                    f"direct QP `{target.attr}` assignment outside "
                    "QueuePair.modify()",
                    "go through qp.modify(new_state): it validates the "
                    "transition and runs the ERROR/RESET flush",
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self.in_src and not self.is_psn_module \
                and isinstance(node.op, (ast.Add, ast.Sub)) \
                and (self._is_psn_expr(node.left) or self._is_psn_expr(node.right)):
            self.report(
                "PROTO002", node,
                f"raw PSN arithmetic `{ast.unparse(node)}`",
                "PSNs are 24-bit circular: use Psn.next/add/delta/wrap",
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.in_src and not self.is_psn_module \
                and isinstance(node.op, (ast.Add, ast.Sub)) \
                and self._is_psn_expr(node.target):
            self.report(
                "PROTO002", node,
                f"raw PSN arithmetic `{ast.unparse(node)}`",
                "PSNs are 24-bit circular: use Psn.next/add/delta/wrap",
            )
        self.generic_visit(node)

    # -- SIM001: global RNG -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if not self.is_rng_module:
            for alias in node.names:
                if alias.name == "random":
                    self.report(
                        "SIM001", node, "import of the global `random` module",
                        "draw from a named sim.rng.stream(...) instead",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.is_rng_module and node.module in ("random", "numpy.random"):
            self.report(
                "SIM001", node, f"import from `{node.module}`",
                "draw from a named sim.rng.stream(...) instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Match exactly the `np.random` / `numpy.random` node so a chain like
        # `np.random.default_rng` reports once, not per attribute level.
        if not self.is_rng_module and node.attr == "random" \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("np", "numpy"):
            self.report(
                "SIM001", node,
                "numpy's global RNG namespace (`np.random`)",
                "derive a generator from sim.rng.stream(name)",
            )
        self.generic_visit(node)

    # -- statements / expressions ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        parts = _dotted(node.func)
        dotted = ".".join(parts)

        # SIM001: unseeded default_rng() anywhere outside the rng module.
        if not self.is_rng_module and parts and parts[-1] == "default_rng" \
                and not node.args and not node.keywords:
            self.report(
                "SIM001", node, "unseeded default_rng() is nondeterministic",
                "seed it, or use sim.rng.stream(name)",
            )

        # SIM002: wall clock inside src/repro.
        if self.in_src and dotted in _WALLCLOCK_CALLS:
            self.report(
                "SIM002", node, f"wall-clock read `{dotted}()` in simulated code",
                "use sim.now; benchmarks may measure host time outside src/repro",
            )

        # SIM003: .pop() on a set-typed receiver.
        if parts and parts[-1] == "pop" and not node.args \
                and isinstance(node.func, ast.Attribute) \
                and _is_set_expr(node.func.value, self._scopes[-1]):
            self.report(
                "SIM003", node, "set.pop() returns an arbitrary element",
                "pop from a deque/list or sort first",
            )

        # SIM005: hook call sites must sit under their enabled-guard.
        if self.in_src and not self.hook_impl:
            self._check_hook_site(node, parts)

        self.generic_visit(node)

    def _check_hook_site(self, node: ast.Call, parts: list[str]) -> None:
        if len(parts) < 2:
            return
        method = parts[-1]
        receiver = parts[:-1]
        is_tele = "telemetry" in receiver or receiver[0] == "tele"
        is_trace = method in ("emit", "new_span") and "trace" in receiver
        is_fault = method.startswith("on_") and (
            "faults" in receiver or "injector" in receiver
        )
        is_monitor = (method.startswith("on_") or method == "register_qp") and (
            "_monitor" in receiver or receiver[-1] in ("mon", "monitor")
        )
        if not (is_tele or is_trace or is_fault or is_monitor):
            return
        if is_monitor:
            if self._notnone_depth == 0 and node.lineno not in self._hook_lines:
                self._hook_lines.add(node.lineno)
                self.report(
                    "PROTO004", node,
                    f"monitor hook `{'.'.join(parts)}(...)` not dominated by "
                    "an `is None` guard branch",
                    "bind `mon = ...._monitor` and wrap the site in a single "
                    "`if mon is not None:` block (one branch when off)",
                )
            return
        guarded = self._notnone_depth if is_fault else self._enabled_depth
        if guarded == 0 and node.lineno not in self._hook_lines:
            self._hook_lines.add(node.lineno)
            kind = "telemetry" if is_tele else ("trace" if is_trace else "fault")
            want = "is not None" if is_fault else ".enabled"
            self.report(
                "SIM005", node,
                f"{kind} hook `{'.'.join(parts)}(...)` not dominated by an "
                f"enabled-guard branch",
                f"wrap the site in a single `if <{kind}>{want}:` block",
            )

    def visit_If(self, node: ast.If) -> None:
        test_names = set(_names_in(node.test))
        enabled_guard = "enabled" in test_names
        notnone_guard = any(
            isinstance(s, ast.Constant) and s.value is None
            for s in ast.walk(node.test)
        ) or bool({"faults", "injector"} & test_names)
        self.visit(node.test)
        self._enabled_depth += enabled_guard
        self._notnone_depth += notnone_guard
        for stmt in node.body:
            self.visit(stmt)
        self._enabled_depth -= enabled_guard
        self._notnone_depth -= notnone_guard
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self._scopes[-1]):
            self.report(
                "SIM003", node, "iteration over a set is hash-order dependent",
                "iterate sorted(...) or keep a deque/list",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_inf_sentinel(node: ast.AST) -> bool:
        """``float("inf")`` / ``math.inf``: exact sentinel compares are safe."""
        if isinstance(node, ast.Call) and _dotted(node.func) == ["float"] and \
                node.args and isinstance(node.args[0], ast.Constant) and \
                node.args[0].value == "inf":
            return True
        return isinstance(node, ast.Attribute) and node.attr == "inf"

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = (node.left, *node.comparators)
        if self.in_src and not self.is_psn_module \
                and any(isinstance(op, (ast.Lt, ast.Gt, ast.LtE, ast.GtE))
                        for op in node.ops) \
                and sum(1 for s in sides if self._is_psn_expr(s)) >= 2:
            self.report(
                "PROTO002", node,
                f"raw PSN ordering compare `{ast.unparse(node)}`",
                "24-bit serial order: use Psn.cmp(a, b) (half-window rule)",
            )
        if self.in_src and \
                any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops) and \
                not any(self._is_inf_sentinel(s) for s in sides):
            for side in sides:
                if self._is_timeish(side):
                    self.report(
                        "SIM004", node,
                        f"float ==/!= on simulated-time expression "
                        f"`{ast.unparse(side)}`",
                        "compare ordering, or pragma an intentional "
                        "same-instant check",
                    )
                    break
        self.generic_visit(node)

    @staticmethod
    def _is_timeish(node: ast.AST) -> bool:
        for name in _names_in(node):
            if name in _TIME_NAMES or name.endswith(_TIME_SUFFIXES):
                return True
        return False

    # -- SIM006: __slots__ discipline ------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.in_sim and self._needs_slots(node):
            self.report(
                "SIM006", node,
                f"sim class `{node.name}` has no __slots__",
                "declare __slots__ (instances are allocated on the hot path)",
            )
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _needs_slots(node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if "dataclass" in _dotted(deco):
                return False  # dataclasses manage their own layout
        for base in node.bases:
            last = (_dotted(base) or [""])[-1]
            if last in ("Exception", "BaseException") or \
                    last.endswith(("Error", "Exception", "Warning")):
                return False
        if node.name.endswith(("Error", "Exception", "Warning")):
            return False
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets
            ):
                return False
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__slots__":
                return False
        return True


# -- driver ---------------------------------------------------------------------


def lint_source(
    source: str, path: str = "<string>", rules: Optional[Sequence[str]] = None
) -> list[Finding]:
    """Lint one module's source text; returns suppression-filtered findings."""
    norm = path.replace("/", os.sep)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding("SIM000", path, exc.lineno or 0,
                        f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, norm)
    visitor.visit(tree)
    findings = visitor.findings

    pragmas = _parse_pragmas(source)
    for pragma in pragmas:
        if pragma.rule is None:
            findings.append(Finding(
                "SIM000", path, pragma.line,
                f"unknown sanitizer pragma `{pragma.name}`",
                "valid pragmas: " + ", ".join(sorted(PRAGMAS)),
            ))
            pragma.used = True  # don't double-report as unused
        elif not pragma.reason:
            findings.append(Finding(
                "SIM000", path, pragma.line,
                f"pragma `{pragma.name}` carries no reason",
                "write `# sim: " + pragma.name + "(why this is safe)`",
            ))
            pragma.used = True

    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for pragma in pragmas:
            if pragma.rule == finding.rule and pragma.reason and \
                    pragma.line in (finding.line, finding.line - 1):
                pragma.used = True
                suppressed = True
        if not suppressed:
            kept.append(finding)

    for pragma in pragmas:
        if not pragma.used:
            kept.append(Finding(
                "SIM000", path, pragma.line,
                f"pragma `{pragma.name}` suppresses nothing",
                "remove it (stale allowlist entries hide regressions)",
            ))

    if rules is not None:
        allowed = set(rules) | {"SIM000"}
        kept = [f for f in kept if f.rule in allowed]
    return kept


def _iter_py_files(roots: Sequence[str], excludes: Sequence[str]) -> Iterable[str]:
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(".py"):
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames
                if not any(ex in os.path.join(dirpath, d) for ex in excludes)
            )
            for name in sorted(filenames):
                full = os.path.join(dirpath, name)
                if name.endswith(".py") and \
                        not any(ex in full for ex in excludes):
                    yield full


def run_lint(
    paths: Optional[Sequence[str]] = None,
    root: str = ".",
    rules: Optional[Sequence[str]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> list[Finding]:
    """Lint ``paths`` (default: the standard roots under ``root``)."""
    if paths:
        roots = list(paths)
    else:
        roots = [os.path.join(root, r) for r in DEFAULT_ROOTS
                 if os.path.exists(os.path.join(root, r))]
    findings: list[Finding] = []
    for path in _iter_py_files(roots, excludes):
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(Finding("SIM000", path, 0, f"unreadable: {exc}"))
            continue
        findings.extend(lint_source(source, path, rules=rules))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
