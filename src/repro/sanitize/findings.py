"""The shared finding model for lint and runtime sanitizers.

Both halves of :mod:`repro.sanitize` — the AST linter and the runtime
race/RNG checkers — report problems as :class:`Finding` records so the CLI,
CI and tests consume one shape: human-readable text lines and
machine-readable JSON objects carrying ``file:line``, the rule id and a fix
hint.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

#: rule id -> (pragma name, one-line summary).  SIM0xx are static (lint)
#: rules, SIM1xx are runtime sanitizer rules (no pragma: fix the code).
RULES: dict[str, tuple[str, str]] = {
    "SIM000": ("", "malformed, reason-less or unused sanitizer pragma"),
    "SIM001": ("allow-random", "global RNG use outside repro.sim.rng"),
    "SIM002": ("allow-wallclock", "wall-clock read inside src/repro"),
    "SIM003": ("allow-set-iter", "iteration order taken from an unordered set"),
    "SIM004": ("allow-float-eq", "float ==/!= on simulated-time expressions"),
    "SIM005": ("allow-unguarded-hook", "telemetry/trace/fault hook not behind an enabled-guard"),
    "SIM006": ("allow-no-slots", "hot-path sim class missing __slots__"),
    "SIM101": ("", "same-timestamp outcome depends on heap-insertion seq"),
    "SIM102": ("", "rng stream-discipline violation"),
    "SIM103": ("", "event dispatched before the current simulated time"),
    # PROTO0xx are protocol-aware static (lint) rules; PROTO1xx are the
    # runtime invariant monitors in repro.verify.monitors (no pragma:
    # a protocol violation is a bug, fix the code).
    "PROTO001": ("allow-qp-state-write", "QP state assigned outside QueuePair.modify()"),
    "PROTO002": ("allow-raw-psn-arith", "raw arithmetic/compare on a PSN bypassing the Psn helper"),
    "PROTO003": ("allow-no-cqe-path", "completion-consuming function with no CQE-posting call"),
    "PROTO004": ("allow-unguarded-monitor", "protocol-monitor hook not behind an `is None` guard"),
    "PROTO101": ("", "completion discipline: signaled WR must complete exactly once"),
    "PROTO102": ("", "responder PSN discipline: expected_psn rewound or ACK for unaccepted PSN"),
    "PROTO103": ("", "QP state machine: illegal transition or out-of-modify() state write"),
    "PROTO104": ("", "error flush: flush CQE before ERROR or out of SQ order"),
    "PROTO105": ("", "retransmission bound: retries exceed retry_cnt/rnr_retries"),
    "PROTO106": ("", "atomic exactly-once: replayed response differs from original value"),
    "PROTO107": ("", "SQ occupancy out of [0, sq_depth]"),
}

#: Rule-id prefixes of the protocol-aware static rules (``repro verify lint``).
PROTO_LINT_RULES = tuple(r for r in RULES if r.startswith("PROTO0"))

#: pragma name -> rule id it suppresses.
PRAGMAS: dict[str, str] = {
    pragma: rule for rule, (pragma, _summary) in RULES.items() if pragma
}


@dataclass(frozen=True)
class Finding:
    """One violation of the determinism contract."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""
    source: str = "lint"  # "lint" | "runtime"

    def text(self) -> str:
        out = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            out += f" [hint: {self.hint}]"
        return out

    def asdict(self) -> dict[str, object]:
        return asdict(self)


def sort_key(finding: Finding) -> tuple[str, int, str]:
    return (finding.path, finding.line, finding.rule)


def format_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary line."""
    items = sorted(findings, key=sort_key)
    if not items:
        return "repro.sanitize: clean (0 findings)"
    lines = [f.text() for f in items]
    by_rule: dict[str, int] = {}
    for f in items:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
    lines.append(f"repro.sanitize: {len(items)} finding(s) ({summary})")
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report: a JSON object with a ``findings`` array."""
    items = sorted(findings, key=sort_key)
    return json.dumps(
        {"findings": [f.asdict() for f in items], "count": len(items)},
        indent=2,
        sort_keys=True,
    )
