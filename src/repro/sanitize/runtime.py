"""Runtime sanitizers: same-timestamp races, RNG discipline, time travel.

Enabled per-simulator with ``Simulator(sanitize=True)`` or globally with
``REPRO_SANITIZE=1`` in the environment.  When enabled the engine runs an
instrumented copy of its dispatch loop and the resource/store primitives
report their touches here; when disabled every hook site costs a single
``is None`` branch and the hot loop is byte-for-byte the optimized one.

The three checks (rule ids continue the SIM lint pack):

- **SIM101 — same-timestamp race.**  Touches of one resource/store (and
  therefore of the QP/CQ work queues built on them) are bucketed per
  ``(now, priority)``.  If, inside one bucket, two *different* event
  dispatches contend for the same object — one wins a slot/item inline
  while another parks, two park on the same queue, or two ``try_get``
  polls race for one item — then the winner is decided by heap-insertion
  ``seq``.  That is deterministic, but it is exactly the fragile coupling
  the determinism contract exists to keep out of model code: reordering
  two unrelated ``put``/``request`` calls in a refactor silently changes
  results.  Both event descriptions are reported.
- **SIM102 — RNG stream discipline.**  Every named stream must be drawn
  by a single component (call site); a stream shared by two components
  couples their draw sequences, so adding a draw in one silently perturbs
  the other.  Draws are also only legal during engine dispatch or initial
  setup — drawing after/between ``run()`` calls perturbs streams outside
  simulated causality.
- **SIM103 — time travel.**  An event popping with a timestamp below the
  current clock means the heap invariant broke; the sanitizer records the
  pair before the engine raises.

Observation only: the sanitizer never draws randomness, schedules events
or mutates simulation state, so a sanitizers-on run is bit-identical to a
sanitizers-off run (asserted by ``tests/test_golden_determinism.py``).
"""

from __future__ import annotations

import os
import sys
from typing import TYPE_CHECKING, Optional

from repro.sanitize.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np

    from repro.sim.engine import Simulator

#: Findings from every sanitized simulator in the process, in creation
#: order.  Lets tests and benchmarks assert cleanliness of runs whose
#: simulators live inside library calls (e.g. the perftest runner).
GLOBAL_FINDINGS: list[Finding] = []


def env_sanitize() -> bool:
    """Is ``REPRO_SANITIZE`` switched on in the environment?"""
    return os.environ.get("REPRO_SANITIZE", "").lower() in ("1", "true", "yes", "on")


def drain_global_findings() -> list[Finding]:
    """Return and clear the process-wide finding list."""
    out = list(GLOBAL_FINDINGS)
    GLOBAL_FINDINGS.clear()
    return out


def _describe_event(event: object) -> str:
    """A stable human-readable tag for a heap entry (no addresses)."""
    cls = event.__class__.__name__
    process = getattr(event, "process", None)
    if process is not None and cls == "_Resume":
        return f"resume:{getattr(process, 'name', '?')}"
    fn = getattr(event, "fn", None)
    if fn is not None and cls == "_Callback":
        return f"call_later:{getattr(fn, '__qualname__', repr(fn))}"
    name = getattr(event, "name", "")
    tag = f"{cls}:{name}" if name else cls
    # A generic event that wakes a process carries its bound ``_resume``
    # (or a waiter-group ``_check``/``_deliver``) in the callback list;
    # naming the woken process beats a bare class name in race reports.
    for cb in getattr(event, "callbacks", None) or ():
        target = getattr(cb, "__self__", None)
        woken = getattr(target, "name", None)
        if woken and getattr(cb, "__name__", "") in ("_resume", "_deliver", "_check"):
            return f"{tag}->resume:{woken}"
    return tag


class _Touch:
    __slots__ = ("dispatch", "desc", "op", "contended")

    def __init__(self, dispatch: int, desc: str, op: str, contended: bool):
        self.dispatch = dispatch
        self.desc = desc
        self.op = op
        self.contended = contended


class _StreamProxy:
    """Forwarding wrapper around one ``np.random.Generator`` stream.

    Attribute access returns a thin closure that notifies the sanitizer
    and then calls the real method, so draw *values* are untouched.
    """

    __slots__ = ("_gen", "_name", "_san")

    def __init__(self, gen: "np.random.Generator", name: str,
                 san: "RuntimeSanitizer"):
        self._gen = gen
        self._name = name
        self._san = san

    def __getattr__(self, attr: str):
        value = getattr(self._gen, attr)
        if not callable(value):
            return value
        san = self._san
        name = self._name

        def _recorded(*args, _m=value, **kwargs):
            san.note_draw(name)
            return _m(*args, **kwargs)

        return _recorded

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<sanitized {self._gen!r} stream={self._name!r}>"


class RuntimeSanitizer:
    """Per-simulator recorder for the SIM101/102/103 checks."""

    __slots__ = (
        "sim", "findings", "in_dispatch", "run_started",
        "_bucket_key", "_touches", "_dispatch_id", "_dispatch_desc",
        "_stream_owner", "_reported_streams",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.findings: list[Finding] = []
        self.in_dispatch = False
        self.run_started = False
        self._bucket_key: tuple[float, int] = (-1.0, -1)
        #: object id -> (label, [touches]) for the current bucket.
        self._touches: dict[int, tuple[str, list[_Touch]]] = {}
        self._dispatch_id = 0
        self._dispatch_desc = "<setup>"
        #: stream name -> owning component ("file:qualname").
        self._stream_owner: dict[str, str] = {}
        self._reported_streams: set[tuple[str, str]] = set()

    def _emit(self, rule: str, message: str, hint: str = "") -> None:
        finding = Finding(rule=rule, path="<runtime>", line=0,
                          message=message, hint=hint, source="runtime")
        self.findings.append(finding)
        GLOBAL_FINDINGS.append(finding)

    # -- engine hooks ----------------------------------------------------------

    def on_dispatch(self, when: float, priority: int, event: object) -> None:
        """Called by the instrumented loop before each event executes."""
        if when < self.sim._now:
            self._emit(
                "SIM103",
                f"event {_describe_event(event)} dispatched at t={when} "
                f"while the clock is at t={self.sim._now}",
                "something pushed a heap entry into the past",
            )
        key = (when, priority)
        if key != self._bucket_key:
            self._flush_bucket()
            self._bucket_key = key
        self._dispatch_id += 1
        self._dispatch_desc = _describe_event(event)

    def begin_run(self) -> None:
        self.run_started = True

    def finish(self) -> None:
        """Close the open bucket (end of a ``run()``)."""
        self._flush_bucket()
        self._bucket_key = (-1.0, -1)
        self._dispatch_desc = "<between runs>"

    # -- touch recording -------------------------------------------------------

    def note_touch(self, obj: object, label: str, op: str, contended: bool) -> None:
        """Record one resource/store touch by the current dispatch."""
        entry = self._touches.get(id(obj))
        if entry is None:
            entry = self._touches[id(obj)] = (label, [])
        entry[1].append(
            _Touch(self._dispatch_id, self._dispatch_desc, op, contended)
        )

    def _flush_bucket(self) -> None:
        touches = self._touches
        if not touches:
            return
        when, priority = self._bucket_key
        for label, tlist in touches.values():
            if len(tlist) < 2:
                continue
            contended = [t for t in tlist if t.contended]
            if not contended:
                continue
            # A race needs a second, *different* dispatch doing the *same
            # kind* of touch: two requesters, two getters, two putters.
            # Cross-kind pairs (producer/consumer puts serving a parked
            # get, a release handing a slot to the FIFO head) commute —
            # the bucket's outcome is the same either way.
            for t in contended:
                other = next(
                    (o for o in tlist
                     if o.dispatch != t.dispatch and o.op == t.op), None
                )
                if other is None:
                    continue
                first, second = sorted((t, other), key=lambda x: x.dispatch)
                self._emit(
                    "SIM101",
                    f"same-timestamp race on {label} at t={when} "
                    f"(priority {priority}): [{first.desc}] did "
                    f"`{first.op}` and [{second.desc}] did `{second.op}`; "
                    f"the outcome depends on heap-insertion seq",
                    "separate the contenders in time or priority, or make "
                    "the ordering explicit through one queue",
                )
                break  # one finding per object per bucket
        touches.clear()

    # -- rng hooks -------------------------------------------------------------

    def wrap_stream(self, name: str, gen: "np.random.Generator") -> _StreamProxy:
        return _StreamProxy(gen, name, self)

    def note_draw(self, name: str) -> None:
        """Record one draw from stream ``name`` by the calling component."""
        frame = sys._getframe(2)  # note_draw <- _recorded <- component
        here = os.path.dirname(os.path.abspath(__file__))
        rng_impl = os.path.join(os.path.dirname(here), "sim", "rng.py")
        while frame is not None and (
            frame.f_code.co_filename.startswith(here)
            or frame.f_code.co_filename == rng_impl
        ):
            frame = frame.f_back
        if frame is None:  # pragma: no cover - defensive
            component = "<unknown>"
        else:
            code = frame.f_code
            component = f"{os.path.basename(code.co_filename)}:{code.co_qualname}"

        owner = self._stream_owner.get(name)
        if owner is None:
            self._stream_owner[name] = component
        elif owner != component and (name, component) not in self._reported_streams:
            self._reported_streams.add((name, component))
            self._emit(
                "SIM102",
                f"rng stream {name!r} drawn by two components: first "
                f"{owner}, now {component}",
                "give each component its own named stream",
            )
        if self.run_started and not self.in_dispatch and \
                ("<outside>", name) not in self._reported_streams:
            self._reported_streams.add(("<outside>", name))
            self._emit(
                "SIM102",
                f"rng stream {name!r} drawn outside engine execution "
                f"(component {component})",
                "only draw while the simulator is dispatching events",
            )
