"""Determinism correctness tooling: static lint + runtime sanitizers.

Two halves, one finding model (see DESIGN.md "Determinism contract &
sanitizers"):

- :mod:`repro.sanitize.lint` — the SIM001–SIM006 AST rulepack over
  ``src/``, ``benchmarks/``, ``tests/`` and ``tools/`` (CLI:
  ``repro sanitize lint``).
- :mod:`repro.sanitize.runtime` — the SIM101–SIM103 runtime checkers
  (same-timestamp races, RNG stream discipline, time travel), enabled by
  ``REPRO_SANITIZE=1`` or ``Simulator(sanitize=True)``.
"""

from repro.sanitize.findings import (
    RULES,
    Finding,
    format_json,
    format_text,
)
from repro.sanitize.lint import lint_source, run_lint
from repro.sanitize.runtime import (
    RuntimeSanitizer,
    drain_global_findings,
    env_sanitize,
)

__all__ = [
    "RULES",
    "Finding",
    "RuntimeSanitizer",
    "drain_global_findings",
    "env_sanitize",
    "findings_of",
    "format_json",
    "format_text",
    "lint_source",
    "run_lint",
]


def findings_of(sim) -> list[Finding]:
    """Runtime findings recorded so far by ``sim`` (closes the open bucket)."""
    san = sim._sanitize
    if san is None:
        return []
    san.finish()
    return list(san.findings)
