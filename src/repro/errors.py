"""Exception hierarchy for the repro package.

Every subsystem raises from this tree so callers can catch at the right
granularity (``ReproError`` for everything, ``VerbsError`` for the RDMA
stack, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """Misuse of the discrete-event engine (e.g. yielding a used event)."""


class ProcessInterrupt(ReproError):
    """Thrown inside a simulated process when another process interrupts it.

    Mirrors SimPy's ``Interrupt``: carries an arbitrary ``cause``.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class HardwareError(ReproError):
    """Invalid hardware configuration or operation."""


class VerbsError(ReproError):
    """Base for ibverbs-layer failures."""


class QPStateError(VerbsError):
    """Operation illegal in the queue pair's current state."""


class MemoryAccessError(VerbsError):
    """Access outside a registered memory region or with wrong permissions."""


class CQError(VerbsError):
    """Completion queue misuse (overflow, polling a destroyed CQ, ...)."""


class PolicyViolation(ReproError):
    """A CoRD policy denied a dataplane operation."""

    def __init__(self, policy: str, reason: str):
        super().__init__(f"{policy}: {reason}")
        self.policy = policy
        self.reason = reason


class KernelError(ReproError):
    """OS-model failures (bad syscall, socket misuse, ...)."""


class MPIError(ReproError):
    """MPI-layer failures (truncation, invalid rank, ...)."""


class ConfigError(ReproError):
    """Invalid benchmark or system configuration."""


class ProtocolViolation(ReproError):
    """A runtime RC-protocol invariant (PROTO1xx) was violated.

    Raised by :class:`repro.verify.monitors.ProtocolMonitor` in strict
    mode; the message carries the rule id and the offending QP/WR so the
    explorer can turn it into a counterexample."""
