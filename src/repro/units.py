"""Canonical units used throughout the simulation.

Simulated time is measured in **nanoseconds** (float).  Data sizes are
measured in **bytes** (int).  Bandwidths are **bytes per nanosecond**
(equivalently GB/s).  All hardware profiles and cost models speak these
units; the helpers here are the only sanctioned conversion points, so a
magnitude bug cannot hide behind an ad-hoc ``* 1e9`` somewhere.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NS: float = 1.0
US: float = 1_000.0
MS: float = 1_000_000.0
SEC: float = 1_000_000_000.0


def ns(value: float) -> float:
    """Nanoseconds (identity, for symmetry/readability)."""
    return value * NS


def us(value: float) -> float:
    """Microseconds to simulation time."""
    return value * US


def ms(value: float) -> float:
    """Milliseconds to simulation time."""
    return value * MS


def seconds(value: float) -> float:
    """Seconds to simulation time."""
    return value * SEC


def to_us(t: float) -> float:
    """Simulation time to microseconds."""
    return t / US


def to_ms(t: float) -> float:
    """Simulation time to milliseconds."""
    return t / MS


def to_seconds(t: float) -> float:
    """Simulation time to seconds."""
    return t / SEC


# --- sizes -----------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * 1024
GiB: int = 1024 * 1024 * 1024


def kib(value: float) -> int:
    """KiB to bytes."""
    return int(value * KiB)


def mib(value: float) -> int:
    """MiB to bytes."""
    return int(value * MiB)


# --- bandwidth -------------------------------------------------------------


def gbit_per_s(value: float) -> float:
    """Gigabits per second to bytes per nanosecond.

    100 Gbit/s == 12.5 bytes/ns.
    """
    return value * 1e9 / 8.0 / 1e9


def gib_per_s(value: float) -> float:
    """GiB per second to bytes per nanosecond."""
    return value * GiB / 1e9


def to_gbit_per_s(bytes_per_ns: float) -> float:
    """Bytes per nanosecond to Gbit/s."""
    return bytes_per_ns * 8.0


def transfer_time(nbytes: float, bandwidth: float) -> float:
    """Time (ns) to move ``nbytes`` at ``bandwidth`` bytes/ns."""
    if nbytes <= 0:
        return 0.0
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    return nbytes / bandwidth


# --- rates -----------------------------------------------------------------


def per_second(rate_hz: float) -> float:
    """Events/second to events per nanosecond."""
    return rate_hz / 1e9


def msgs_per_sec(interval_ns: float) -> float:
    """Inter-message interval (ns) to messages/second."""
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    return 1e9 / interval_ns


def pretty_size(nbytes: int) -> str:
    """Human-readable size: 2 B, 4 KiB, 1 MiB."""
    if nbytes >= GiB and nbytes % GiB == 0:
        return f"{nbytes // GiB} GiB"
    if nbytes >= MiB and nbytes % MiB == 0:
        return f"{nbytes // MiB} MiB"
    if nbytes >= KiB and nbytes % KiB == 0:
        return f"{nbytes // KiB} KiB"
    return f"{nbytes} B"


def pretty_time(t_ns: float) -> str:
    """Human-readable time with an adaptive unit."""
    if t_ns >= SEC:
        return f"{t_ns / SEC:.3f} s"
    if t_ns >= MS:
        return f"{t_ns / MS:.3f} ms"
    if t_ns >= US:
        return f"{t_ns / US:.3f} us"
    return f"{t_ns:.1f} ns"
