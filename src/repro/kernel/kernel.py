"""The per-host OS instance.

Owns interrupt delivery and the IPoIB device; provides completion channels
(the blocking, interrupt-driven way to consume CQs) and wires CQ events
from the NIC to them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.kernel.interrupts import CompletionChannel, IrqModel
from repro.kernel.netstack import NetstackProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.kernel.ipoib import IPoIBDevice
    from repro.verbs.cq import CompletionQueue


class Kernel:
    """OS model for one host."""

    def __init__(self, host: "Host"):
        self.host = host
        self.sim = host.sim
        self.irq = IrqModel(host.sim, host.system, host.host_id)
        self._irq_name = f"h{host.host_id}.irq"
        self._channels: dict[int, CompletionChannel] = {}
        self._chan_seq = 0
        self.ipoib: Optional["IPoIBDevice"] = None  # created lazily by builder

    # -- completion events ---------------------------------------------------------

    def attach_cq(self, cq: "CompletionQueue") -> None:
        """Register a CQ so armed completions raise interrupts."""
        cq.on_event = self._cq_event

    def create_comp_channel(self) -> CompletionChannel:
        self._chan_seq += 1
        chan = CompletionChannel(
            self.sim, self.host.system, name=f"h{self.host.host_id}.chan{self._chan_seq}"
        )
        return chan

    def bind_cq_to_channel(self, cq: "CompletionQueue", chan: CompletionChannel) -> None:
        self._channels[id(cq)] = chan

    def _cq_event(self, cq: "CompletionQueue") -> None:
        """NIC raised a CQ event: deliver the interrupt asynchronously.

        The handler runs on (and steals cycles from) the core the waiting
        thread is pinned to — MSI-X affinity follows the consumer.
        """
        chan = self._channels.get(id(cq))
        if chan is None:
            return  # armed but nobody listening; event is lost (as in verbs)

        def irq_path():
            yield self.irq.delivery_delay_ns()
            core = chan.irq_core
            if core is not None:
                yield from core.run(self.host.system.cpu.irq_handler_ns)
            chan.notify(cq)

        self.sim.spawn(irq_path(), name=self._irq_name)

    # -- sockets --------------------------------------------------------------------

    def ensure_ipoib(self, profile: Optional[NetstackProfile] = None) -> "IPoIBDevice":
        """Create the IPoIB netdevice on first use."""
        if self.ipoib is None:
            from repro.kernel.ipoib import IPoIBDevice

            self.ipoib = IPoIBDevice(self.host, profile)
        return self.ipoib
