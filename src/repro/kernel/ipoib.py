"""IP-over-InfiniBand: the socket path over the RDMA NIC.

IPoIB is the paper's comparison point for fig. 6: it rides the same
InfiniBand NIC but funnels everything through the kernel socket stack, so
the OS keeps full dataplane control — the *functionality* CoRD wants — at
the cost of copies, per-packet processing and interrupts.

The model: a per-host :class:`IPoIBDevice` registered with the NIC for
``"ip"`` wire messages, and SOCK_SEQPACKET-style :class:`IPoIBSocket`
endpoints (message-preserving reliable delivery, which is what the MPI
layer needs; TCP stream dynamics would add nothing to the reproduced
figures).  Flow control is credit-based on the receiver's socket buffer.

Timing per message of S bytes (n = ceil(S / 2044) IPoIB packets):

- sender:   syscall + copy(S) + n * tx_per_packet        (on the app core)
- wire:     bursts of <= 64 KiB through the shared NIC port
- receiver: IRQ (moderated) + serialized softirq n * rx_per_packet,
            then on ``recv``: syscall + copy(S) + wakeup context switch
"""

from __future__ import annotations

import itertools
import math
from collections import deque
from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import KernelError
from repro.hw.cpu import Core
from repro.kernel.netstack import NetstackProfile, Softirq
from repro.sim.store import FilterStore, Store
from repro.verbs.wr import WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.engine import Simulator
    from repro.sim.events import Event

_socket_ids = itertools.count(1)


class IPoIBDevice:
    """The ib0 netdevice of one host."""

    def __init__(self, host: "Host", profile: Optional[NetstackProfile] = None):
        self.host = host
        self.sim: "Simulator" = host.sim
        self.profile = profile or NetstackProfile()
        self.softirq = Softirq(self.sim, host.host_id,
                               rx_queues=self.profile.rx_queues)
        #: (host_id, port) -> listening/connected socket registry is shared
        #: cluster-wide; the builder injects it.
        self.registry: dict[tuple[int, int], "IPoIBSocket"] = {}
        self._sockets: dict[int, "IPoIBSocket"] = {}
        host.nic.ip_handler = self._on_wire_message
        self._rx_name = f"ipoib:h{host.host_id}.rx"
        self.rx_messages = 0
        self.tx_messages = 0

    # -- socket management -------------------------------------------------------

    def socket(self) -> "IPoIBSocket":
        sock = IPoIBSocket(self)
        self._sockets[sock.sock_id] = sock
        return sock

    def bind(self, sock: "IPoIBSocket", port: int) -> None:
        key = (self.host.host_id, port)
        if key in self.registry:
            raise KernelError(f"port {port} already bound on host {self.host.host_id}")
        self.registry[key] = sock
        sock.local = key

    # -- wire handling ---------------------------------------------------------------

    def _on_wire_message(self, msg: WireMessage) -> None:
        """Called by the NIC rx engine for kind == 'ip' messages."""
        self.sim.spawn(self._rx_path(msg), name=self._rx_name)

    def _rx_path(self, msg: WireMessage) -> Generator["Event", object, None]:
        kind, payload = msg.token  # type: ignore[misc]
        if kind == "credit":
            sock_id, nbytes = payload
            sock = self._sockets.get(sock_id)
            if sock is not None:
                sock._return_credit(nbytes)
            return
        # Data segment: IRQ delivery + handler, then serialized softirq work.
        sock_id, seq, seg_idx, nsegs, msg_bytes, data, meta = payload
        yield (self.host.kernel.irq.delivery_delay_ns()
               + self.host.system.cpu.irq_handler_ns)
        work = self.profile.rx_softirq_ns(msg.length)
        yield from self.softirq.process(work, self.profile.packets(msg.length))
        sock = self._sockets.get(sock_id)
        if sock is None:
            return  # socket closed; drop
        sock._segment_arrived(seq, seg_idx, nsegs, msg_bytes, msg.src_host, data, meta)
        self.rx_messages += 1


class IPoIBSocket:
    """Reliable, message-preserving socket over IPoIB."""

    def __init__(self, device: IPoIBDevice):
        self.device = device
        self.sim = device.sim
        self.sock_id = next(_socket_ids)
        self.local: Optional[tuple[int, int]] = None
        self.peer: Optional["IPoIBSocket"] = None
        self._accept_q: Store = Store(self.sim, name=f"sock{self.sock_id}.accept")
        #: Fully reassembled inbound messages: (src_host, nbytes, data).
        self._rx_msgs: FilterStore = FilterStore(self.sim, name=f"sock{self.sock_id}.rx")
        self._partial: dict[int, dict] = {}
        self._seq = itertools.count()
        # Credit-based flow control against the peer's receive buffer.
        self._credits = device.profile.sndbuf_bytes
        self._tx_name = f"sock{self.sock_id}.tx"
        self._credit_name = f"sock{self.sock_id}.credit"
        self._credit_waiters: deque = deque()
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- connection setup (control plane; costs are negligible and one-off) ---------

    def listen(self, port: int) -> None:
        self.device.bind(self, port)

    def accept(self) -> Generator["Event", object, "IPoIBSocket"]:
        """Wait for a peer; returns the connected (server-side) socket."""
        item = yield self._accept_q.get()
        peer, established = item  # type: ignore[misc]
        conn = self.device.socket()
        conn.peer = peer  # type: ignore[assignment]
        peer.peer = conn  # type: ignore[union-attr]
        established.succeed(None)
        return conn

    def connect(
        self, dst_host: int, port: int
    ) -> Generator["Event", object, None]:
        """Blocks until the listener accepted (handshake complete)."""
        registry = self.device.registry
        listener = registry.get((dst_host, port))
        if listener is None:
            raise KernelError(f"connection refused: host {dst_host} port {port}")
        # One RTT of handshake, coarsely.
        yield 2 * self.device.host.fabric.propagation_ns
        established = self.sim.event(name=f"sock{self.sock_id}.established")
        yield listener._accept_q.put((self, established))
        yield established

    # -- data path ---------------------------------------------------------------------

    def send(
        self, core: Core, nbytes: int, data: Optional[bytes] = None
    ) -> Generator["Event", object, None]:
        """Send one message on the connected peer (blocking until the
        kernel accepted it, i.e. copied + credited)."""
        if self.peer is None:
            raise KernelError("send on unconnected socket")
        yield from self._send_impl(core, self.peer, nbytes, data, None, use_credits=True)

    def sendto(
        self,
        core: Core,
        dst_host: int,
        dst_port: int,
        nbytes: int,
        meta: object = None,
        data: Optional[bytes] = None,
    ) -> Generator["Event", object, None]:
        """Datagram-style send to a bound socket (no connection, no
        credit flow control — upper layers pace themselves)."""
        target = self.device.registry.get((dst_host, dst_port))
        if target is None:
            raise KernelError(f"no socket bound at host {dst_host} port {dst_port}")
        yield from self._send_impl(core, target, nbytes, data, meta, use_credits=False)

    def _send_impl(
        self,
        core: Core,
        target: "IPoIBSocket",
        nbytes: int,
        data: Optional[bytes],
        meta: object,
        use_credits: bool,
    ) -> Generator["Event", object, None]:
        if nbytes < 0:
            raise KernelError(f"negative send size: {nbytes}")
        if data is not None and len(data) != nbytes:
            raise KernelError("payload length mismatch")
        prof = self.device.profile
        host = self.device.host
        # Syscall + protocol work + user->kernel copy, all on the app core.
        kernel_work = prof.tx_kernel_ns(nbytes) + host.mem_model.copy_ns(nbytes)
        yield from core.syscall(kernel_work)
        if use_credits:
            # Flow control: wait for peer-buffer credits.  Oversized messages
            # (> sndbuf) wait for a full buffer and drive credits negative,
            # so they make progress instead of deadlocking.
            need = min(nbytes, prof.sndbuf_bytes)
            while self._credits < need:
                gate = self.sim.event(name=f"sock{self.sock_id}.credit")
                self._credit_waiters.append((need, gate))
                yield gate
            self._credits -= nbytes
        seq = next(self._seq)
        nsegs = max(1, math.ceil(nbytes / prof.burst_bytes)) if nbytes else 1
        self.sim.spawn(
            self._tx_segments(target, seq, nbytes, nsegs, data, meta),
            name=self._tx_name,
        )
        self.bytes_sent += nbytes

    def _tx_segments(
        self,
        target: "IPoIBSocket",
        seq: int,
        nbytes: int,
        nsegs: int,
        data: Optional[bytes],
        meta: object,
    ) -> Generator["Event", object, None]:
        prof = self.device.profile
        host = self.device.host
        dst_host = target.device.host.host_id
        remaining = nbytes
        for idx in range(nsegs):
            seg = min(prof.burst_bytes, remaining) if nsegs > 1 else nbytes
            remaining -= seg
            seg_data = None
            if data is not None:
                off = idx * prof.burst_bytes
                seg_data = data[off : off + seg]
            wire = WireMessage(
                kind="ip",
                src_host=host.host_id,
                dst_host=dst_host,
                src_qpn=0,
                dst_qpn=0,
                transport="UD",
                psn=0,
                length=seg,
                token=("data", (target.sock_id, (self.sock_id, seq), idx, nsegs, nbytes, seg_data, meta)),
                # IPoIB per-packet header tax: 44 B per 2044 B packet.
                header_bytes=prof.packets(seg) * 44,
            )
            yield from host.fabric.transmit(host.host_id, dst_host, wire.wire_bytes, wire)
        self.device.tx_messages += 1

    def _segment_arrived(
        self,
        seq: int,
        seg_idx: int,
        nsegs: int,
        msg_bytes: int,
        src_host: int,
        data: Optional[bytes],
        meta: object,
    ) -> None:
        # Segments of a message share (sender sock_id, seq) as the
        # reassembly key (seq alone would collide across senders).
        key = (src_host, seq)  # seq is (sender_sock_id, per-sock counter)
        state = self._partial.setdefault(
            key, {"have": 0, "segs": [None] * nsegs, "bytes": msg_bytes, "meta": meta}
        )
        state["have"] += 1
        state["segs"][seg_idx] = data
        if state["have"] == nsegs:
            del self._partial[key]
            payload = None
            if all(s is not None for s in state["segs"]):
                payload = b"".join(state["segs"])  # type: ignore[arg-type]
            self._rx_msgs.put((src_host, msg_bytes, payload, state["meta"]))

    def recv(
        self, core: Core
    ) -> Generator["Event", object, tuple[int, int, Optional[bytes]]]:
        """Receive one message on a connected socket: (src_host, nbytes, data)."""
        src_host, nbytes, data, _meta = yield from self.recvfrom(core)
        # Return credits to the connected sender.
        if self.peer is not None:
            host = self.device.host
            credit = WireMessage(
                kind="ip",
                src_host=host.host_id,
                dst_host=self.peer.device.host.host_id,
                src_qpn=0,
                dst_qpn=0,
                transport="UD",
                psn=0,
                length=0,
                token=("credit", (self.peer.sock_id, nbytes)),
                header_bytes=44,
            )
            self.sim.spawn(
                self._send_credit(credit), name=self._credit_name
            )
        return src_host, nbytes, data

    def recvfrom(
        self, core: Core
    ) -> Generator["Event", object, tuple[int, int, Optional[bytes], object]]:
        """Receive one message: (src_host, nbytes, data, meta)."""
        prof = self.device.profile
        host = self.device.host
        # Enter the kernel and block until a message is assembled.
        yield from core.syscall(prof.per_message_ns)
        item = yield self._rx_msgs.get()
        src_host, nbytes, data, meta = item  # type: ignore[misc]
        # Wakeup + kernel->user copy.
        yield from core.run(host.system.cpu.context_switch_ns)
        yield from core.run(host.mem_model.copy_ns(nbytes))
        self.bytes_received += nbytes
        return src_host, nbytes, data, meta

    def _send_credit(self, wire: WireMessage) -> Generator["Event", object, None]:
        host = self.device.host
        yield from host.fabric.transmit(
            host.host_id, wire.dst_host, wire.wire_bytes, wire
        )

    def _return_credit(self, nbytes: int) -> None:
        self._credits += nbytes
        while self._credit_waiters and self._credits >= self._credit_waiters[0][0]:
            _need, gate = self._credit_waiters.popleft()
            gate.succeed(None)
