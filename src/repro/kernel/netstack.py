"""Kernel network-stack cost model.

The socket path pays, per message (paper §3, fig. 2a):

1. a send/recv **syscall** (charged via :meth:`repro.hw.cpu.Core.syscall`),
2. a **copy** between user and pinned kernel memory (memcpy model),
3. **per-packet protocol processing** — skb handling, IP/transport headers,
   netdevice queuing — on both sides, and
4. receive-side **softirq** work that is serialized per host (NAPI polls one
   CPU at a time per device queue), which is the aggregate-bandwidth choke
   point that makes IPoIB up to 2x slower in the paper's NPB runs.

This module provides the constants and the per-host softirq resource;
:mod:`repro.kernel.ipoib` builds the actual device and sockets on top.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class NetstackProfile:
    """Socket-path constants (calibrated against IPoIB measurements)."""

    #: IPoIB datagram-mode MTU (4 KiB IB MTU minus IPoIB/IP headers).
    ipoib_mtu: int = 2044
    #: Sender-side kernel protocol work per packet (skb + headers + route).
    tx_per_packet_ns: float = 220.0
    #: Receive-side softirq work per packet (GRO-less IPoIB datagram path).
    rx_per_packet_ns: float = 340.0
    #: Fixed per-message kernel work on top of packet costs (socket lookup,
    #: scheduling the wakeup).
    per_message_ns: float = 900.0
    #: Socket send buffer: sender blocks when this many bytes are in flight.
    sndbuf_bytes: int = 1 << 20
    #: RSS receive queues: softirq processing parallelism per host.  The
    #: default (1) matches the paper-era IPoIB datagram path, whose RX is
    #: effectively serialized; raise it to model RSS/multi-queue setups.
    rx_queues: int = 1
    #: Wire burst size the device uses (event-count optimization: per-packet
    #: costs are charged arithmetically, bursts move through the fabric).
    burst_bytes: int = 64 * 1024

    def packets(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.ipoib_mtu)) if nbytes > 0 else 1

    def tx_kernel_ns(self, nbytes: int) -> float:
        return self.per_message_ns + self.packets(nbytes) * self.tx_per_packet_ns

    def rx_softirq_ns(self, nbytes: int) -> float:
        return self.packets(nbytes) * self.rx_per_packet_ns


class Softirq:
    """Per-host receive processing: RSS queues, each NAPI-serialized."""

    def __init__(self, sim: "Simulator", host_id: int, rx_queues: int = 4):
        self.sim = sim
        self.res = Resource(sim, capacity=max(1, rx_queues),
                            name=f"softirq:h{host_id}")
        self.packets_processed = 0
        self.busy_ns = 0.0

    def process(self, work_ns: float, packets: int):
        """Generator: occupy the softirq context for ``work_ns``."""
        req = self.res.request()
        yield req
        try:
            yield work_ns
            self.packets_processed += packets
            self.busy_ns += work_ns
        finally:
            self.res.release(req)
