"""Operating-system model.

- :class:`~repro.kernel.kernel.Kernel` — per-host OS instance: interrupt
  delivery, completion channels (the "no polling" path), and the socket
  network stack.
- :mod:`~repro.kernel.interrupts` — IRQ cost model + completion channels.
- :mod:`~repro.kernel.netstack` — kernel socket path: copies, per-packet
  processing, softirq serialization.
- :mod:`~repro.kernel.ipoib` — IP-over-InfiniBand netdevice and stream
  sockets used as the functionally-equivalent competitor to CoRD (paper §5).

Syscall entry/exit costs themselves live in :meth:`repro.hw.cpu.Core.syscall`
because they are a property of the CPU + mitigation configuration.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.interrupts import CompletionChannel
from repro.kernel.ipoib import IPoIBDevice, IPoIBSocket
from repro.kernel.sockets import StreamSocket

__all__ = ["Kernel", "CompletionChannel", "IPoIBDevice", "IPoIBSocket",
           "StreamSocket"]
