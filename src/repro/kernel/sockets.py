"""Byte-stream sockets over the kernel network stack (fig. 2a).

:class:`StreamSocket` layers TCP-like semantics on top of the IPoIB
message path: a connected, reliable *byte stream* with a receive buffer,
partial reads (``recv(n)`` may return fewer bytes), and sender blocking on
the peer's advertised window.  This is the API shape the paper's fig. 2a
socket dataplane exposes — contrast with the message-preserving
:class:`~repro.kernel.ipoib.IPoIBSocket` the MPI layer uses.

Costs are inherited from the underlying path: every ``send``/``recv`` is a
syscall, payloads are copied both ways, per-packet kernel work applies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from repro.errors import KernelError
from repro.hw.cpu import Core
from repro.kernel.ipoib import IPoIBDevice, IPoIBSocket

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

#: Max bytes moved per underlying segment send (like a TCP write chunk).
STREAM_CHUNK = 64 * 1024


class StreamSocket:
    """A TCP-like stream endpoint."""

    def __init__(self, device: IPoIBDevice):
        self.device = device
        self.sim = device.sim
        self._inner = device.socket()
        #: Reassembled but not-yet-consumed inbound bytes.
        self._rx = bytearray()
        self._rx_sizes = 0  # bytes available when payloads are size-only
        self._peer_stream: Optional["StreamSocket"] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- connection setup -----------------------------------------------------------

    def listen(self, port: int) -> None:
        self._inner.listen(port)

    def accept(self) -> Generator["Event", object, "StreamSocket"]:
        conn_inner = yield from self._inner.accept()
        conn = StreamSocket.__new__(StreamSocket)
        conn.device = self.device
        conn.sim = self.sim
        conn._inner = conn_inner
        conn._rx = bytearray()
        conn._rx_sizes = 0
        conn._peer_stream = None
        conn.bytes_sent = 0
        conn.bytes_received = 0
        return conn

    def connect(self, dst_host: int, port: int) -> Generator["Event", object, None]:
        yield from self._inner.connect(dst_host, port)

    # -- data path ---------------------------------------------------------------------

    def send(
        self, core: Core, data: Optional[bytes] = None, nbytes: Optional[int] = None
    ) -> Generator["Event", object, int]:
        """Write bytes to the stream; returns the byte count accepted.

        Blocks (via the underlying credit flow control) when the peer's
        buffer is full — TCP backpressure.
        """
        if data is None and nbytes is None:
            raise KernelError("send needs data or nbytes")
        total = len(data) if data is not None else int(nbytes)
        if total < 0:
            raise KernelError(f"negative send size: {total}")
        sent = 0
        while sent < total:
            chunk = min(STREAM_CHUNK, total - sent)
            payload = data[sent:sent + chunk] if data is not None else None
            yield from self._inner.send(core, chunk, payload)
            sent += chunk
        self.bytes_sent += total
        return total

    def recv(
        self, core: Core, max_bytes: int
    ) -> Generator["Event", object, bytes]:
        """Read up to ``max_bytes`` (at least 1) from the stream.

        Returns fewer bytes than requested when that is what has arrived —
        standard stream semantics; loop to read an exact amount.
        """
        if max_bytes <= 0:
            raise KernelError(f"recv size must be positive: {max_bytes}")
        while not self._rx and self._rx_sizes == 0:
            _src, nbytes, payload = yield from self._inner.recv(core)
            if payload is not None:
                self._rx.extend(payload)
            else:
                self._rx_sizes += nbytes
        if self._rx:
            out = bytes(self._rx[:max_bytes])
            del self._rx[:max_bytes]
            self.bytes_received += len(out)
            return out
        take = min(self._rx_sizes, max_bytes)
        self._rx_sizes -= take
        self.bytes_received += take
        return bytes(take)  # size-only mode: zeros stand in for payload

    def recv_exact(
        self, core: Core, nbytes: int
    ) -> Generator["Event", object, bytes]:
        """Loop ``recv`` until exactly ``nbytes`` have been read."""
        parts = []
        got = 0
        while got < nbytes:
            part = yield from self.recv(core, nbytes - got)
            parts.append(part)
            got += len(part)
        return b"".join(parts)
