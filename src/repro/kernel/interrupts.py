"""Interrupt delivery and completion channels.

This is the "remove polling" path from the paper's §2 experiment: instead of
spinning on the CQ, the application arms it (``ibv_req_notify_cq``), blocks
on a completion channel, and is woken by the NIC's interrupt.  The cost is a
large, message-size-independent constant — IRQ delivery, handler, scheduler
wake-up and context switch — exactly the behaviour fig. 1a shows.

IRQ handler time is modelled as latency (the handler runs on a housekeeping
core, not the pinned benchmark core), with lognormal jitter on virtualized
systems.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.hw.cpu import Core
from repro.hw.profiles import SystemProfile
from repro.sim.store import Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event
    from repro.verbs.cq import CompletionQueue


class IrqModel:
    """Per-host interrupt timing."""

    def __init__(self, sim: "Simulator", system: SystemProfile, host_id: int):
        self.sim = sim
        self.system = system
        self._jitter = sim.rng.jitter_stream(f"irq:h{host_id}")
        self._scope = f"host{host_id}"
        self.delivered = 0

    def delivery_delay_ns(self) -> float:
        """NIC MSI-X assertion to handler *entry* (the handler body itself
        is charged on the victim core by the kernel)."""
        cpu = self.system.cpu
        base = self.system.nic.irq_moderation_ns + cpu.irq_entry_ns
        self.delivered += 1
        tele = self.sim.telemetry
        if tele.enabled:
            tele.scope(self._scope).counter("kernel.irqs").inc()
        return self._jitter.draw(base, self.system.syscall_jitter_cv)


class CompletionChannel:
    """``ibv_comp_channel`` analogue: blocking wait for CQ events."""

    def __init__(self, sim: "Simulator", system: SystemProfile, name: str = "chan"):
        self.sim = sim
        self.system = system
        self.name = name
        self._events: Store = Store(sim, name=f"{name}.events")
        self.wakeups = 0
        #: The core the IRQ is affine to (the last waiter's core): the
        #: handler *steals* cycles from it, as a pinned benchmark feels.
        self.irq_core: Core | None = None

    def notify(self, cq: "CompletionQueue") -> None:
        """Kernel side: a CQ event has fired (post-IRQ)."""
        self._events.put(cq)

    def wait(self, core: Core) -> Generator["Event", object, "CompletionQueue"]:
        """Application side: block until a CQ event arrives.

        Charges the epoll-style arm/sleep entry and the wake-up context
        switch; the core is *idle* while blocked (this is what lets DVFS
        boost and other threads run — the flip side of the latency cost).
        """
        cpu = self.system.cpu
        self.irq_core = core
        yield from core.syscall(cpu.block_ns)
        cq = yield self._events.get()
        yield from core.run(cpu.context_switch_ns)
        self.wakeups += 1
        return cq  # type: ignore[return-value]
