"""Result series, ASCII tables and paper-comparison helpers."""

from repro.analysis.series import Series, SweepTable
from repro.analysis.tables import format_table, print_table
from repro.analysis.compare import CheckResult, check_ratio, check_between
from repro.analysis.critpath import (
    PathSegment,
    critical_path,
    format_path,
    stage_totals,
)
from repro.analysis.timeline import format_timeline, message_timeline, stage_latencies

__all__ = [
    "Series",
    "SweepTable",
    "format_table",
    "print_table",
    "CheckResult",
    "check_ratio",
    "check_between",
    "message_timeline",
    "format_timeline",
    "stage_latencies",
    "PathSegment",
    "critical_path",
    "format_path",
    "stage_totals",
]
