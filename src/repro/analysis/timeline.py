"""Message-life timelines from NIC trace records.

Enable tracing (``Simulator(trace=Trace(enabled=True))``), run traffic,
then render where each nanosecond went::

    t+0.000 us  host0  doorbell    qpn=65 wr=3 send 4096 B
    t+0.105 us  host0  tx_start    wire 4144 B
    t+0.583 us  host0  tx_done
    t+0.833 us  host1  rx_arrive   send psn=3
    t+1.393 us  host1  cqe         wr=1001 success

This doubles as the debugging story for the simulator itself and as the
"what would an OS see" demo for CoRD-style observability.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.trace import Trace, TraceRecord


def message_timeline(trace: Trace, psn: Optional[int] = None,
                     qpn: Optional[int] = None) -> list[TraceRecord]:
    """NIC records, optionally filtered to one message (psn) or QP."""
    out = []
    for rec in trace.select(category="nic"):
        # Records without the filtered field (e.g. CQE writes carry no PSN)
        # pass through; the filter narrows only what it can identify.
        rec_psn = rec.get("psn", None)
        if psn is not None and rec_psn is not None and rec_psn != psn:
            continue
        rec_qpn = rec.get("qpn", None)
        if qpn is not None and rec_qpn is not None and rec_qpn != qpn:
            continue
        out.append(rec)
    return out


def format_timeline(records: list[TraceRecord], t0: Optional[float] = None) -> str:
    """Human-readable rendering, timestamps relative to the first record."""
    if not records:
        return "(no trace records — is tracing enabled?)"
    base = records[0].time if t0 is None else t0
    lines = []
    for rec in records:
        fields = {k: v for k, v in rec.fields}
        host = fields.pop("host", "?")
        detail = "  ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        lines.append(
            f"t+{(rec.time - base) / 1000:8.3f} us  host{host}  "
            f"{rec.event:<10} {detail}"
        )
    return "\n".join(lines)


def stage_latencies(records: list[TraceRecord]) -> dict[str, float]:
    """Per-stage deltas for a single message's records (ns).

    Returns spans between consecutive milestones, keyed
    ``"<from>-><to>"`` — e.g. ``doorbell->tx_start`` is NIC scheduling +
    fetch, ``tx_start->tx_done`` is wire serialization.
    """
    out: dict[str, float] = {}
    for prev, cur in zip(records, records[1:]):
        key = f"{prev.event}->{cur.event}"
        n = 2
        while key in out:  # disambiguate repeats (e.g. data CQE vs ack CQE)
            key = f"{prev.event}->{cur.event}#{n}"
            n += 1
        out[key] = cur.time - prev.time
    return out
