"""Paper-versus-measured checks.

The benchmarks print PASS/FAIL lines against the paper's qualitative
claims (who wins, by roughly what factor, where crossovers fall).  These
are *shape* checks, not absolute-number matches — the substrate is a
simulator, not the authors' testbed (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CheckResult:
    label: str
    passed: bool
    detail: str

    def line(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"  [{mark}] {self.label}: {self.detail}"


def check_ratio(
    label: str, measured: float, expected: float, tol: float = 0.5
) -> CheckResult:
    """Measured ratio within (1 +/- tol) x expected."""
    lo, hi = expected * (1 - tol), expected * (1 + tol)
    passed = lo <= measured <= hi
    return CheckResult(
        label, passed,
        f"measured {measured:.3g}, paper ~{expected:.3g} (accept {lo:.3g}..{hi:.3g})",
    )


def check_between(
    label: str, measured: float, lo: float, hi: float
) -> CheckResult:
    passed = lo <= measured <= hi
    return CheckResult(label, passed, f"measured {measured:.3g}, expected {lo:.3g}..{hi:.3g}")
