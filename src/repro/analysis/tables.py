"""Plain ASCII table rendering for benchmark output."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TextIO


def format_table(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(header))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def print_table(
    header: Sequence[str],
    rows: Iterable[Sequence[str]],
    title: str = "",
    file: Optional[TextIO] = None,
) -> str:
    text = format_table(header, rows, title)
    print(text, file=file)
    return text
