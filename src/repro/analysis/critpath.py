"""Critical path through coupled operations.

A windowed transmitter (``send_bw``) keeps many WRs in flight; the end of
the run is gated by a *chain* of stages hopping between ops: the last op's
completion waits on its CQE, whose arrival waited on the rx engine, which
was busy with the previous message, whose wire slot waited behind the one
before it, …  Attribution (:mod:`repro.telemetry.attribution`) records,
for every queued stage, *which* stage of *which* op it waited behind —
this module chases those blocker links backwards from the latest-ending
op and emits the time-contiguous chain of activity that actually bounded
the run.

The walk is exact, not heuristic: a queued stage's service begins at the
instant its blocker's service ends (serial FIFO servers), so jumping to
the blocker keeps the path gapless.  Summing path segments therefore
reproduces the measured makespan, and ``stage_totals`` answers "what
would speeding up stage X buy?" the way a real critical-path profile
does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.tables import format_table
from repro.telemetry.attribution import OpBlame


@dataclass(frozen=True)
class PathSegment:
    """One time-contiguous slice of the critical path."""

    span_id: int
    op: str
    host: object
    comp: str
    stage: str
    start_ns: float
    end_ns: float
    #: "service" (the component worked), "wait" (CQE written, app had not
    #: polled yet), "queue" (queued with no resolvable blocker — kept only
    #: so the path stays gapless).
    kind: str

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


def critical_path(blames: Iterable[OpBlame]) -> list[PathSegment]:
    """Walk blocker links backwards from the latest-ending op.

    Returns segments in forward time order; consecutive segments abut
    exactly (``segments[i].end_ns == segments[i+1].start_ns``).  The path
    starts at some op's ``post`` and ends at the latest completion.
    """
    blames = [b for b in blames if b.stages]
    if not blames:
        return []
    by_id = {b.span_id: b for b in blames}
    cur = max(blames, key=lambda b: (b.end_ns, b.span_id))
    segments: list[PathSegment] = []
    visited: set[tuple[int, str]] = set()
    idx = len(cur.stages) - 1
    while idx >= 0:
        stage = cur.stages[idx]
        key = (cur.span_id, stage.name)
        if key in visited:  # blocker cycle would mean corrupt data; stop
            break
        visited.add(key)
        if stage.kind == "wait":
            # All queue, no blocker op: the path sat in the CQ until the
            # application polled.  Traverse in-span.
            segments.append(PathSegment(
                cur.span_id, cur.op, stage.host, stage.comp, stage.name,
                stage.start_ns, stage.end_ns, "wait"))
            idx -= 1
            continue
        if stage.service_ns > 0:
            segments.append(PathSegment(
                cur.span_id, cur.op, stage.host, stage.comp, stage.name,
                stage.service_start_ns, stage.end_ns, "service"))
        if stage.queue_ns > 0:
            blocker = stage.blocker
            target = _find(by_id, blocker) if blocker else None
            if target is not None:
                # The blocker's service ended exactly where ours began —
                # the path continues inside the blocking op.
                cur, idx = target
                continue
            # No resolvable blocker (e.g. it was ring-evicted): keep the
            # path gapless with an explicit queue segment.
            segments.append(PathSegment(
                cur.span_id, cur.op, stage.host, stage.comp, stage.name,
                stage.start_ns, stage.service_start_ns, "queue"))
        idx -= 1
    segments.reverse()
    return segments


def _find(
    by_id: dict[int, OpBlame], blocker: tuple[int, str]
) -> Optional[tuple[OpBlame, int]]:
    span_id, stage_name = blocker
    blame = by_id.get(span_id)
    if blame is None:
        return None
    for i, stage in enumerate(blame.stages):
        if stage.name == stage_name:
            return blame, i
    return None


def stage_totals(segments: Iterable[PathSegment]) -> dict[str, float]:
    """Path nanoseconds per ``stage/kind`` — the shortening-payoff table."""
    totals: dict[str, float] = {}
    for seg in segments:
        key = f"{seg.stage}/{seg.kind}"
        totals[key] = totals.get(key, 0.0) + seg.duration_ns
    return totals


def format_path(segments: list[PathSegment], limit: int = 40) -> str:
    """Human rendering: the totals table plus the head of the chain."""
    if not segments:
        return "critical path: (no complete spans)"
    span = segments[-1].end_ns - segments[0].start_ns
    totals = stage_totals(segments)
    rows = [
        [name, f"{ns:.1f}", f"{ns / span * 100:.1f}"]
        for name, ns in sorted(totals.items(), key=lambda kv: -kv[1])
    ]
    out = [format_table(
        ["stage/kind", "path ns", "share %"], rows,
        title=f"critical path: {span:.1f} ns over {len(segments)} segments, "
              f"{len({s.span_id for s in segments})} ops",
    )]
    shown = segments if len(segments) <= limit else segments[:limit]
    lines = [
        f"  {seg.start_ns:12.1f} .. {seg.end_ns:12.1f}  "
        f"span {seg.span_id:>4d}  host{seg.host}/{seg.comp:<7s} "
        f"{seg.stage:<12s} {seg.kind:<7s} {seg.duration_ns:10.1f} ns"
        for seg in shown
    ]
    if len(segments) > limit:
        lines.append(f"  ... {len(segments) - limit} more segments")
    out.append("\n".join(lines))
    return "\n\n".join(out)
