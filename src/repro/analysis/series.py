"""Named data series keyed by a sweep variable (message size, benchmark...)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Series:
    """One line of a figure: y values over the sweep's x values."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def add(self, x, y) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def y_at(self, x):
        return self.ys[self.xs.index(x)]

    def ratio_to(self, other: "Series") -> "Series":
        """Element-wise self/other over the common xs."""
        out = Series(f"{self.name}/{other.name}")
        for x, y in zip(self.xs, self.ys):
            if x in other.xs:
                base = other.y_at(x)
                out.add(x, y / base if base else float("nan"))
        return out

    def __len__(self) -> int:
        return len(self.xs)


@dataclass
class SweepTable:
    """A figure's worth of series sharing one x axis."""

    title: str
    x_label: str
    series: list[Series] = field(default_factory=list)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        raise KeyError(name)

    def add_series(self, series: Series) -> Series:
        self.series.append(series)
        return series

    def new_series(self, name: str) -> Series:
        return self.add_series(Series(name))

    def rows(self, fmt: Optional[str] = "{:.3f}") -> tuple[list[str], list[list[str]]]:
        """(header, rows) ready for the table printer."""
        xs: list = []
        for s in self.series:
            for x in s.xs:
                if x not in xs:
                    xs.append(x)
        header = [self.x_label] + [s.name for s in self.series]
        rows = []
        for x in xs:
            row = [str(x)]
            for s in self.series:
                try:
                    y = s.y_at(x)
                    row.append(fmt.format(y) if fmt else str(y))
                except ValueError:
                    row.append("-")
            rows.append(row)
        return header, rows
